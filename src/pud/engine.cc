#include "pud/engine.h"

#include <algorithm>

#include "hammer/patterns.h"
#include "util/logging.h"

namespace pud::ops {

PudEngine::PudEngine(bender::TestBench &bench, BankId bank)
    : bench_(&bench), bank_(bank)
{
    if (bank >= bench.device().config().banks)
        fatal("PudEngine: bank %u out of range", bank);
}

bool
PudEngine::sameSubarray(RowId a, RowId b) const
{
    const dram::Device &dev = bench_->device();
    return dev.subarrayOfPhysical(dev.toPhysical(a)) ==
           dev.subarrayOfPhysical(dev.toPhysical(b));
}

RowId
PudEngine::subarrayOffset(RowId logical) const
{
    const dram::Device &dev = bench_->device();
    return dev.toPhysical(logical) %
           dev.config().rowsPerSubarray;
}

void
PudEngine::setPolicy(mitigation::ComputeRegionPolicy *policy,
                     dram::SubarrayId subarray)
{
    policy_ = policy;
    policySubarray_ = subarray;
}

bool
PudEngine::policyAllowsComra(RowId src, RowId dst)
{
    if (!policy_)
        return true;
    if (!policy_->allowsComra(subarrayOffset(src),
                              subarrayOffset(dst))) {
        ++stats_.rejected;
        return false;
    }
    return true;
}

bool
PudEngine::policyAllowsSimra(const std::vector<RowId> &rows_physical)
{
    if (!policy_)
        return true;
    const dram::Device &dev = bench_->device();
    std::vector<RowId> offsets;
    offsets.reserve(rows_physical.size());
    for (RowId p : rows_physical)
        offsets.push_back(p % dev.config().rowsPerSubarray);
    if (!policy_->allowsSimra(offsets)) {
        ++stats_.rejected;
        return false;
    }
    return true;
}

void
PudEngine::policyOnSimraOp()
{
    if (!policy_)
        return;
    const RowId offset = policy_->onSimraOp();
    if (offset == dram::kNoRow)
        return;
    // Refresh the scheduled compute-region row: activate + precharge.
    dram::Device &dev = bench_->device();
    const RowId physical =
        policySubarray_ * dev.config().rowsPerSubarray + offset;
    const RowId logical = dev.toLogical(physical);
    hammer::PatternTimings t;
    bender::Program p;
    p.act(bank_, logical, t.base.tRP).pre(bank_, t.base.tRAS);
    bench_->run(p);
    ++stats_.policyRefreshes;
}

void
PudEngine::issueCopy(RowId src, RowId dst)
{
    hammer::PatternTimings t;
    bender::Program p;
    p.act(bank_, src, t.base.tRP)
        .pre(bank_, t.base.tRAS)
        .act(bank_, dst, t.comraPreToAct)
        .pre(bank_, t.base.tRAS);
    bench_->run(p);
    ++stats_.copies;
}

bool
PudEngine::copy(RowId src, RowId dst)
{
    if (src == dst || !sameSubarray(src, dst))
        return false;
    if (!policyAllowsComra(src, dst))
        return false;
    const RowData expected = bench_->readRow(bank_, src);
    issueCopy(src, dst);
    return bench_->readRow(bank_, dst) == expected;
}

void
PudEngine::fill(RowId row, bool value)
{
    bench_->fillRow(bank_, row,
                    value ? dram::DataPattern::PFF
                          : dram::DataPattern::P00);
}

bool
PudEngine::groupWrite(RowId block_row, int n, const RowData &data)
{
    dram::Device &dev = bench_->device();
    if (!dev.supportsSimra())
        return false;
    if (n < 2 || n > 32 || (n & (n - 1)) != 0)
        return false;

    // The contiguous N-aligned block containing block_row.
    const RowId phys = dev.toPhysical(block_row);
    const RowId base = phys & ~static_cast<RowId>(n - 1);
    if (dev.subarrayOfPhysical(base) !=
        dev.subarrayOfPhysical(base + n - 1))
        return false;

    std::vector<RowId> group;
    for (int i = 0; i < n; ++i)
        group.push_back(base + static_cast<RowId>(i));
    if (!policyAllowsSimra(group))
        return false;

    const RowId r1 = dev.toLogical(base);
    const RowId r2 = dev.toLogical(base + static_cast<RowId>(n - 1));

    hammer::PatternTimings t;
    bender::Program p;
    const int data_index = p.addData(data);
    p.act(bank_, r1, t.base.tRP)
        .pre(bank_, t.simraActToPre)
        .act(bank_, r2, t.simraPreToAct)
        .nop(t.base.tRCD)
        .wr(bank_, data_index, 0)
        .pre(bank_, t.base.tRAS);
    bench_->run(p);
    ++stats_.simraOps;
    policyOnSimraOp();
    return true;
}

bool
PudEngine::broadcast(RowId src, RowId block_row, int n)
{
    const RowData data = bench_->readRow(bank_, src);
    return groupWrite(block_row, n, data);
}

std::optional<RowData>
PudEngine::replicatedMajority(const std::vector<RowId> &operands,
                              const std::vector<int> &replication,
                              RowId scratch_block, int n)
{
    dram::Device &dev = bench_->device();
    if (!dev.supportsSimra())
        return std::nullopt;

    // Validate the replication vector before touching DRAM: a count
    // per operand, every count positive, and the total exactly the
    // block size.  Anything else would read replication[] out of
    // bounds or leave the block partially staged.
    if (operands.empty() || replication.size() != operands.size()) {
        ++stats_.rejected;
        return std::nullopt;
    }
    int total = 0;
    for (int r : replication) {
        if (r <= 0) {
            ++stats_.rejected;
            return std::nullopt;
        }
        total += r;
    }
    if (total != n) {
        ++stats_.rejected;
        return std::nullopt;
    }

    // The contiguous n-aligned scratch block.
    const RowId phys = dev.toPhysical(scratch_block);
    const RowId base = phys & ~static_cast<RowId>(n - 1);
    if (dev.subarrayOfPhysical(base) !=
        dev.subarrayOfPhysical(base + static_cast<RowId>(n - 1)))
        return std::nullopt;

    std::vector<RowId> group;
    for (int i = 0; i < n; ++i)
        group.push_back(base + static_cast<RowId>(i));
    if (!policyAllowsSimra(group))
        return std::nullopt;

    // Check geometry and policy for every staging copy up front, so a
    // rejected operation leaves DRAM contents untouched.
    const RowId base_logical = dev.toLogical(base);
    for (RowId operand : operands) {
        if (!sameSubarray(operand, base_logical)) {
            ++stats_.rejected;
            return std::nullopt;
        }
    }
    {
        int slot = 0;
        for (std::size_t o = 0; o < operands.size(); ++o)
            for (int r = 0; r < replication[o]; ++r) {
                const RowId dst = dev.toLogical(
                    base + static_cast<RowId>(slot++));
                if (!policyAllowsComra(operands[o], dst))
                    return std::nullopt;
            }
    }

    // Stage the replicated operands into the block via RowClone.
    int slot = 0;
    for (std::size_t o = 0; o < operands.size(); ++o)
        for (int r = 0; r < replication[o]; ++r)
            issueCopy(operands[o],
                      dev.toLogical(base + static_cast<RowId>(slot++)));

    // One simultaneous activation computes the bitline majority and
    // writes it back into every row of the block.
    const RowId r1 = dev.toLogical(base);
    const RowId r2 =
        dev.toLogical(base + static_cast<RowId>(n - 1));
    hammer::PatternTimings t;
    bender::Program p;
    p.act(bank_, r1, t.base.tRP)
        .pre(bank_, t.simraActToPre)
        .act(bank_, r2, t.simraPreToAct)
        .pre(bank_, t.base.tRAS);
    bench_->run(p);
    ++stats_.simraOps;
    policyOnSimraOp();

    return bench_->readRow(bank_, r1);
}

std::optional<RowData>
PudEngine::maj3(RowId a, RowId b, RowId c, RowId scratch_block)
{
    // (3, 3, 2): bitline one-counts land in {0, 2, 3, 5, 6, 8} -- a
    // 4-4 tie is impossible, and the weighted majority equals MAJ3.
    return replicatedMajority({a, b, c}, {3, 3, 2}, scratch_block, 8);
}

std::optional<RowData>
PudEngine::maj5(RowId a, RowId b, RowId c, RowId d, RowId e,
                RowId scratch_block)
{
    // (4, 3, 3, 3, 3): no subset sums to 8, so no bitline ever ties,
    // and any 3-of-5 winning coalition weighs at least 9 > 16/2.
    return replicatedMajority({a, b, c, d, e}, {4, 3, 3, 3, 3},
                              scratch_block, 16);
}

std::optional<RowId>
PudEngine::andOrCtrlRow(RowId scratch_block)
{
    // The control operand lives just outside the 8-row scratch block:
    // the row after it if that stays inside the subarray, otherwise
    // the row before.  Both candidates must be validated -- `base - 1`
    // underflows RowId when the block starts at physical row 0, and
    // crosses into the *previous* subarray whenever the block is the
    // first of its subarray, in which case maj3 would fail only after
    // fill() had already clobbered a row it does not own.
    dram::Device &dev = bench_->device();
    const RowId phys = dev.toPhysical(scratch_block);
    const RowId base = phys & ~RowId(7);
    const RowId rps = dev.config().rowsPerSubarray;
    const RowId sub_begin = (base / rps) * rps;
    const RowId sub_end = sub_begin + rps;
    if (base + 8 > sub_end) {
        // Block itself crosses the subarray edge; maj3 would reject.
        ++stats_.rejected;
        return std::nullopt;
    }
    if (base + 8 < sub_end)
        return dev.toLogical(base + 8);
    if (base > sub_begin)
        return dev.toLogical(base - 1);
    // rowsPerSubarray == 8: the block spans the whole subarray and no
    // in-subarray control row exists on either side.
    ++stats_.rejected;
    return std::nullopt;
}

std::optional<RowData>
PudEngine::bitAnd(RowId a, RowId b, RowId scratch_block)
{
    // AND(a, b) = MAJ3(a, b, 0): the control operand is staged in the
    // scratch block itself (last slots) after being filled.
    const std::optional<RowId> ctrl = andOrCtrlRow(scratch_block);
    if (!ctrl)
        return std::nullopt;
    fill(*ctrl, false);
    return maj3(a, b, *ctrl, scratch_block);
}

std::optional<RowData>
PudEngine::bitOr(RowId a, RowId b, RowId scratch_block)
{
    const std::optional<RowId> ctrl = andOrCtrlRow(scratch_block);
    if (!ctrl)
        return std::nullopt;
    fill(*ctrl, true);
    return maj3(a, b, *ctrl, scratch_block);
}

} // namespace pud::ops
