#include "pud/engine.h"

#include <algorithm>

#include "hammer/patterns.h"
#include "util/logging.h"

namespace pud::ops {

PudEngine::PudEngine(bender::TestBench &bench, BankId bank)
    : bench_(&bench),
      bank_(bank),
      geom_(semantics::geometryOf(bench.device().config()))
{
    if (bank >= bench.device().config().banks)
        fatal("PudEngine: bank %u out of range", bank);
}

RowId
PudEngine::subarrayOffset(RowId logical) const
{
    const dram::Device &dev = bench_->device();
    return dev.toPhysical(logical) %
           dev.config().rowsPerSubarray;
}

void
PudEngine::setPolicy(mitigation::ComputeRegionPolicy *policy,
                     dram::SubarrayId subarray)
{
    policy_ = policy;
    policySubarray_ = subarray;
}

bool
PudEngine::policyAllowsComra(RowId src, RowId dst)
{
    if (!policy_)
        return true;
    if (!policy_->allowsComra(subarrayOffset(src),
                              subarrayOffset(dst))) {
        ++stats_.rejected;
        return false;
    }
    return true;
}

bool
PudEngine::policyAllowsSimra(const std::vector<RowId> &rows_physical)
{
    if (!policy_)
        return true;
    const dram::Device &dev = bench_->device();
    std::vector<RowId> offsets;
    offsets.reserve(rows_physical.size());
    for (RowId p : rows_physical)
        offsets.push_back(p % dev.config().rowsPerSubarray);
    if (!policy_->allowsSimra(offsets)) {
        ++stats_.rejected;
        return false;
    }
    return true;
}

void
PudEngine::policyOnSimraOp()
{
    if (!policy_)
        return;
    const RowId offset = policy_->onSimraOp();
    if (offset == dram::kNoRow)
        return;
    // Refresh the scheduled compute-region row: activate + precharge.
    dram::Device &dev = bench_->device();
    const RowId physical =
        policySubarray_ * dev.config().rowsPerSubarray + offset;
    const RowId logical = dev.toLogical(physical);
    hammer::PatternTimings t;
    bender::Program p;
    p.act(bank_, logical, t.base.tRP).pre(bank_, t.base.tRAS);
    bench_->run(p);
    ++stats_.policyRefreshes;
}

void
PudEngine::issueCopy(RowId src, RowId dst)
{
    hammer::PatternTimings t;
    bender::Program p;
    p.act(bank_, src, t.base.tRP)
        .pre(bank_, t.base.tRAS)
        .act(bank_, dst, t.comraPreToAct)
        .pre(bank_, t.base.tRAS);
    bench_->run(p);
    ++stats_.copies;
}

bool
PudEngine::copy(RowId src, RowId dst)
{
    const dram::Device &dev = bench_->device();
    if (!semantics::comraCopy(geom_, dev.toPhysical(src),
                              dev.toPhysical(dst))
             .valid)
        return false;
    if (!policyAllowsComra(src, dst))
        return false;
    const RowData expected = bench_->readRow(bank_, src);
    issueCopy(src, dst);
    return bench_->readRow(bank_, dst) == expected;
}

void
PudEngine::fill(RowId row, bool value)
{
    bench_->fillRow(bank_, row,
                    value ? dram::DataPattern::PFF
                          : dram::DataPattern::P00);
}

bool
PudEngine::groupWrite(RowId block_row, int n, const RowData &data)
{
    dram::Device &dev = bench_->device();

    // The declarative table owns the geometry rules: power-of-two
    // group size, the N-aligned block containing block_row, and the
    // block staying inside one subarray.
    const semantics::MacroEffect eff =
        semantics::simraGroupWrite(geom_, dev.toPhysical(block_row), n);
    if (!eff.valid)
        return false;
    if (!policyAllowsSimra(eff.writes))
        return false;

    const RowId r1 = dev.toLogical(eff.writes.front());
    const RowId r2 = dev.toLogical(eff.writes.back());

    hammer::PatternTimings t;
    bender::Program p;
    const int data_index = p.addData(data);
    p.act(bank_, r1, t.base.tRP)
        .pre(bank_, t.simraActToPre)
        .act(bank_, r2, t.simraPreToAct)
        .nop(t.base.tRCD)
        .wr(bank_, data_index, 0)
        .pre(bank_, t.base.tRAS);
    bench_->run(p);
    ++stats_.simraOps;
    policyOnSimraOp();
    return true;
}

bool
PudEngine::broadcast(RowId src, RowId block_row, int n)
{
    const RowData data = bench_->readRow(bank_, src);
    return groupWrite(block_row, n, data);
}

std::optional<RowData>
PudEngine::replicatedMajority(const std::vector<RowId> &operands,
                              const std::vector<int> &replication,
                              RowId scratch_block, int n)
{
    dram::Device &dev = bench_->device();
    if (!dev.supportsSimra())
        return std::nullopt;

    // The declarative table validates everything before any DRAM
    // mutation: the replication vector's shape (one positive count per
    // operand summing exactly to n), the n-aligned scratch block
    // staying inside one subarray, and every operand sharing the
    // block's subarray.  A tie-able replication (some subset of the
    // weights sums to n/2) is rejected too: the bitline majority is
    // undefined on real chips at exactly half charge.
    std::vector<RowId> operands_phys;
    operands_phys.reserve(operands.size());
    for (RowId operand : operands)
        operands_phys.push_back(dev.toPhysical(operand));
    const semantics::MajorityPlan plan =
        semantics::replicatedMajorityPlan(
            geom_, operands_phys, replication,
            dev.toPhysical(scratch_block), n);
    if (!plan.effect.valid || plan.tieable) {
        ++stats_.rejected;
        return std::nullopt;
    }

    if (!policyAllowsSimra(plan.effect.writes))
        return std::nullopt;
    for (const auto &[src, dst] : plan.staging)
        if (!policyAllowsComra(dev.toLogical(src), dev.toLogical(dst)))
            return std::nullopt;

    // Stage the replicated operands into the block via RowClone.
    for (const auto &[src, dst] : plan.staging)
        issueCopy(dev.toLogical(src), dev.toLogical(dst));

    // One simultaneous activation computes the bitline majority and
    // writes it back into every row of the block.
    const RowId r1 = dev.toLogical(plan.base);
    const RowId r2 =
        dev.toLogical(plan.base + static_cast<RowId>(n - 1));
    hammer::PatternTimings t;
    bender::Program p;
    p.act(bank_, r1, t.base.tRP)
        .pre(bank_, t.simraActToPre)
        .act(bank_, r2, t.simraPreToAct)
        .pre(bank_, t.base.tRAS);
    bench_->run(p);
    ++stats_.simraOps;
    policyOnSimraOp();

    return bench_->readRow(bank_, r1);
}

std::optional<RowData>
PudEngine::maj3(RowId a, RowId b, RowId c, RowId scratch_block)
{
    // (3, 3, 2): bitline one-counts land in {0, 2, 3, 5, 6, 8} -- a
    // 4-4 tie is impossible, and the weighted majority equals MAJ3.
    return replicatedMajority({a, b, c}, {3, 3, 2}, scratch_block, 8);
}

std::optional<RowData>
PudEngine::maj5(RowId a, RowId b, RowId c, RowId d, RowId e,
                RowId scratch_block)
{
    // (4, 3, 3, 3, 3): no subset sums to 8, so no bitline ever ties,
    // and any 3-of-5 winning coalition weighs at least 9 > 16/2.
    return replicatedMajority({a, b, c, d, e}, {4, 3, 3, 3, 3},
                              scratch_block, 16);
}

std::optional<RowId>
PudEngine::andOrCtrlRow(RowId scratch_block)
{
    // The control operand lives just outside the 8-row scratch block:
    // the row after it if that stays inside the subarray, otherwise
    // the row before.  The table validates *both* candidates before
    // returning -- `base - 1` underflows RowId when the block starts
    // at physical row 0, and crosses into the *previous* subarray
    // whenever the block is the first of its subarray, in which case
    // maj3 would fail only after fill() had already clobbered a row
    // it does not own.
    dram::Device &dev = bench_->device();
    const std::optional<RowId> ctrl = semantics::andOrControlRow(
        geom_, dev.toPhysical(scratch_block));
    if (!ctrl) {
        ++stats_.rejected;
        return std::nullopt;
    }
    return dev.toLogical(*ctrl);
}

std::optional<RowData>
PudEngine::bitAnd(RowId a, RowId b, RowId scratch_block)
{
    // AND(a, b) = MAJ3(a, b, 0): the control operand is staged in the
    // scratch block itself (last slots) after being filled.
    const std::optional<RowId> ctrl = andOrCtrlRow(scratch_block);
    if (!ctrl)
        return std::nullopt;
    fill(*ctrl, false);
    return maj3(a, b, *ctrl, scratch_block);
}

std::optional<RowData>
PudEngine::bitOr(RowId a, RowId b, RowId scratch_block)
{
    const std::optional<RowId> ctrl = andOrCtrlRow(scratch_block);
    if (!ctrl)
        return std::nullopt;
    fill(*ctrl, true);
    return maj3(a, b, *ctrl, scratch_block);
}

} // namespace pud::ops
