/**
 * @file
 * Shared measurement core of the campaign driver and the minimizer:
 * one HC_first search of a built candidate on a bench.
 */

#ifndef PUD_FUZZ_MEASURE_H
#define PUD_FUZZ_MEASURE_H

#include <cstdint>

#include "bender/host.h"
#include "fuzz/fuzz.h"

namespace pud::fuzz {

/**
 * HC_first of `built` (in base periods) on `bench`, or
 * hammer::kNoFlip.  Resets the bench to its config seed first, so
 * every candidate is measured on identical silicon regardless of what
 * ran on the bench before (the arena-reuse idiom); then probes once
 * at the full budget and only runs the bisection search if the
 * victim flips.  Every executed trial increments *probes when given.
 */
std::uint64_t measureBuiltHc(bender::TestBench &bench,
                             const BuiltPattern &built, RowId victim,
                             std::uint64_t max_periods,
                             std::uint64_t *probes = nullptr);

} // namespace pud::fuzz

#endif // PUD_FUZZ_MEASURE_H
