#include "fuzz/minimize.h"

#include <algorithm>

#include "fuzz/measure.h"
#include "hammer/hcfirst.h"

namespace pud::fuzz {

namespace {

constexpr std::uint64_t kNoFlip = hammer::kNoFlip;

} // namespace

MinimizedPattern
minimizePattern(bender::TestBench &bench,
                const dram::DeviceConfig &dcfg,
                const Candidate &original, RowId victim,
                std::uint64_t max_periods, std::size_t corpus_idx)
{
    MinimizedPattern out;
    out.corpusIdx = corpus_idx;
    out.original = original;

    // Total-ACT cost of one candidate variant (kNoFlip if it stops
    // flipping); every underlying trial bumps out.probes.
    const auto cost = [&](const Candidate &c) -> std::uint64_t {
        const BuiltPattern built =
            buildPattern(c, 0, victim, 1, dcfg);
        const std::uint64_t hc = measureBuiltHc(
            bench, built, victim, max_periods, &out.probes);
        return hc == kNoFlip ? kNoFlip : hc * built.actsPerPeriod;
    };

    // Replay: deterministic measurement must reproduce the campaign.
    out.originalActs = cost(original);
    out.aggressorsBefore =
        buildPattern(original, 0, victim, 1, dcfg).aggressors.size();

    Candidate best = original;
    std::uint64_t best_acts = out.originalActs;

    // Greedy bisection toward a minimal aggressor set: accept any
    // reduction that does not cost more ACTs than the current best.
    if (best_acts != kNoFlip) {
        bool improved = true;
        while (improved) {
            improved = false;

            // Drop whole components.
            for (std::size_t i = 0;
                 !improved && best.comps.size() > 1 &&
                 i < best.comps.size();
                 ++i) {
                Candidate trial = best;
                trial.comps.erase(trial.comps.begin() +
                                  static_cast<std::ptrdiff_t>(i));
                const std::uint64_t acts = cost(trial);
                if (acts <= best_acts) {
                    best = std::move(trial);
                    best_acts = acts;
                    improved = true;
                }
            }

            // Single-side double-sided RowHammer/Press components.
            for (std::size_t i = 0; !improved && i < best.comps.size();
                 ++i) {
                Component &k = best.comps[i];
                if ((k.tech != Tech::RowHammer &&
                     k.tech != Tech::Press) ||
                    k.offHi == 0)
                    continue;
                Candidate trial = best;
                trial.comps[i].offHi = 0;
                const std::uint64_t acts = cost(trial);
                if (acts <= best_acts) {
                    best = std::move(trial);
                    best_acts = acts;
                    improved = true;
                }
            }
        }
    }

    out.minimized = best;
    out.minimizedActs = best_acts;
    out.aggressorsAfter =
        buildPattern(best, 0, victim, 1, dcfg).aggressors.size();

    // Fig-21-style intensity sweep: thin every component's lattice by
    // a common stride scale and re-measure the total-ACT cost.
    for (int scale : {1, 2, 4, 8}) {
        if (scale == 1) {
            out.intensitySweep.emplace_back(scale, best_acts);
            continue;
        }
        Candidate thinned = best;
        for (Component &k : thinned.comps) {
            const int s = k.stride * scale;
            k.stride = static_cast<std::uint8_t>(std::min(s, 255));
        }
        out.intensitySweep.emplace_back(scale, cost(thinned));
    }
    return out;
}

} // namespace pud::fuzz
