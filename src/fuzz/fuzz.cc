#include "fuzz/fuzz.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/logging.h"

namespace pud::fuzz {

namespace {

using pud::Time;

/**
 * The PatternTimings menus: the calibrated operating points the
 * paper's sweeps (and the hand-built experiments) exercise.  t_AggOn
 * index 0 is the nominal tRAS hold RowHammer uses; the larger entries
 * are the RowPress regime (Fig. 9).  CoMRA delays stay within the
 * device's copy window (Fig. 18 sweeps 7.5-12 ns; the model's
 * comraMaxPreToAct is 13 ns), SiMRA gaps within the group-open window.
 */
constexpr double kAggOnNs[kAggOnMenuSize] = {36.0, 120.0, 1000.0,
                                             7800.0};
constexpr double kComraDelayNs[kComraDelayMenuSize] = {2.5, 5.0, 7.5};
constexpr double kSimraGapNs[kSimraGapMenuSize] = {1.5, 3.0, 4.5};

/** XOR mask giving the bit-combination SiMRA group of size n. */
RowId
simraMask(int n)
{
    switch (n) {
      case 2:
        return 0x2;
      case 4:
        return 0x6;
      case 8:
        return 0xE;
      default:
        fatal("fuzz: unsupported SiMRA group size %d", n);
    }
}

void
hashBytes(std::uint64_t &h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ULL;  // FNV-1a prime
    }
}

} // namespace

const char *
techName(Tech t)
{
    switch (t) {
      case Tech::RowHammer:
        return "rowhammer";
      case Tech::Comra:
        return "comra";
      case Tech::Simra:
        return "simra";
      case Tech::Press:
        return "press";
    }
    return "?";
}

std::uint64_t
shapeHash(const Candidate &c)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
    const unsigned char head[3] = {c.trefis, c.slotsPerTrefi,
                                   static_cast<unsigned char>(
                                       c.refSync)};
    hashBytes(h, head, sizeof head);
    for (const Component &k : c.comps) {
        const unsigned char body[7] = {
            static_cast<unsigned char>(k.tech),
            k.phase,
            k.stride,
            static_cast<unsigned char>(k.offLo),
            static_cast<unsigned char>(k.offHi),
            k.simraN,
            k.timingSel,
        };
        hashBytes(h, body, sizeof body);
    }
    return h;
}

Candidate
generateCandidate(std::uint64_t seed, std::uint64_t index)
{
    // Counter-based stream: candidate `index` is reproducible on any
    // thread without materializing earlier candidates.
    Rng rng = Rng::keyed(seed, 0xF0220001ULL, index);

    Candidate c;
    c.trefis = static_cast<std::uint8_t>(1 + rng.below(4));
    static constexpr std::uint8_t kSlots[5] = {8, 12, 16, 24, 32};
    c.slotsPerTrefi = kSlots[rng.below(5)];
    c.refSync = rng.chance(0.5);

    const std::size_t ncomps = 1 + rng.below(4);
    c.comps.reserve(ncomps);
    for (std::size_t i = 0; i < ncomps; ++i) {
        Component k;
        k.tech = static_cast<Tech>(rng.below(4));
        k.phase = static_cast<std::uint8_t>(rng.below(c.slotsPerTrefi));
        k.stride = static_cast<std::uint8_t>(1u << rng.below(4));

        // Aggressor geometry menus.  Offsets stay within kVictimMargin
        // of the victim; the "far" +14 partner models the paper's
        // far-double-sided arrangements (Obs. 5).
        static constexpr std::int8_t kSandwich[][2] = {
            {-1, 1}, {-2, 2}, {-1, 0}, {1, -1}, {-1, 14}};
        static constexpr std::int8_t kComraOps[][2] = {
            {-1, 1}, {1, -1}, {-1, 14}, {-2, 2}};

        switch (k.tech) {
          case Tech::RowHammer:
          case Tech::Press: {
            const auto &o = kSandwich[rng.below(5)];
            k.offLo = o[0];
            k.offHi = o[1];
            // Canonical timing: RowHammer is pinned to the nominal
            // hold so equal programs hash equally; Press draws from
            // the long-t_AggOn entries.
            k.timingSel = static_cast<std::uint8_t>(
                k.tech == Tech::Press ? 1 + rng.below(kAggOnMenuSize - 1)
                                      : 0);
            break;
          }
          case Tech::Comra: {
            const auto &o = kComraOps[rng.below(4)];
            k.offLo = o[0];
            k.offHi = o[1];
            k.timingSel = static_cast<std::uint8_t>(
                rng.below(kComraDelayMenuSize));
            break;
          }
          case Tech::Simra: {
            k.offLo = 0;
            k.offHi = 0;
            k.simraN =
                static_cast<std::uint8_t>(1u << (1 + rng.below(3)));
            k.timingSel = static_cast<std::uint8_t>(
                rng.below(kSimraGapMenuSize));
            break;
          }
        }
        c.comps.push_back(k);
    }
    return c;
}

BuiltPattern
buildPattern(const Candidate &c, BankId bank, RowId victim,
             std::uint64_t periods, const dram::DeviceConfig &cfg)
{
    if (c.comps.empty())
        fatal("fuzz: candidate has no components");
    if (c.slotsPerTrefi == 0 || c.trefis == 0)
        fatal("fuzz: degenerate candidate grid %u x %u", c.trefis,
              c.slotsPerTrefi);
    if (victim % 16 != 1)
        fatal("fuzz: victim %u must satisfy victim %% 16 == 1 so the "
              "SiMRA bit-combination groups sandwich it",
              victim);
    const RowId rps = cfg.rowsPerSubarray;
    const RowId sub_lo = victim / rps * rps;
    if (victim < sub_lo + kVictimMargin ||
        victim + kVictimMargin >= sub_lo + rps)
        fatal("fuzz: victim %u needs %u rows of subarray margin "
              "(rowsPerSubarray %u)",
              victim, kVictimMargin, rps);
    if (cfg.profile.mapping != dram::MappingScheme::Sequential)
        fatal("fuzz: buildPattern requires the Sequential mapping "
              "(campaign configs pin it)");

    const dram::TimingParams &t = cfg.timings;
    const std::size_t slots =
        static_cast<std::size_t>(c.trefis) * c.slotsPerTrefi;

    // Slot ownership: earlier components claim their (phase, stride)
    // lattice first; later components only win free slots.
    std::vector<int> owner(slots, -1);
    for (std::size_t ci = 0; ci < c.comps.size(); ++ci) {
        const Component &k = c.comps[ci];
        if (k.stride == 0)
            fatal("fuzz: component stride must be >= 1");
        for (std::size_t s = k.phase; s < slots; s += k.stride)
            if (owner[s] < 0)
                owner[s] = static_cast<int>(ci);
    }

    // Slot pacing: with refSync the per-tREFI REF + tRFC recovery is
    // carved out of the tREFI budget, like withRefInterleave does.
    const Time ref_overhead = c.refSync ? t.tRP + t.tRFC : 0;
    if (t.tREFI <= ref_overhead)
        fatal("fuzz: tREFI leaves no slot budget");
    const Time slot_time = (t.tREFI - ref_overhead) / c.slotsPerTrefi;

    BuiltPattern out;
    Program &p = out.program;
    p.loopBegin(periods);

    std::vector<std::uint64_t> occurrence(c.comps.size(), 0);
    const auto arow = [&](std::int8_t off) {
        const RowId r = static_cast<RowId>(
            static_cast<std::int64_t>(victim) + off);
        out.aggressors.push_back(r);
        return r;  // Sequential mapping: logical == physical
    };

    for (std::size_t s = 0; s < slots; ++s) {
        if (c.refSync && s > 0 && s % c.slotsPerTrefi == 0)
            p.ref(t.tRP).nop(t.tRFC);
        const int ci = owner[s];
        if (ci < 0) {
            p.nop(slot_time);
            continue;
        }
        const Component &k = c.comps[static_cast<std::size_t>(ci)];
        const std::uint64_t occ = occurrence[ci]++;
        switch (k.tech) {
          case Tech::RowHammer:
          case Tech::Press: {
            const Time agg_on = units::fromNs(
                kAggOnNs[k.timingSel % kAggOnMenuSize]);
            const std::int8_t off =
                (k.offHi != 0 && occ % 2 == 1) ? k.offHi : k.offLo;
            const Time gap = std::max(t.tRP, slot_time - agg_on);
            p.act(bank, arow(off), gap).pre(bank, agg_on);
            out.actsPerPeriod += 1;
            break;
          }
          case Tech::Comra: {
            const Time delay = units::fromNs(
                kComraDelayNs[k.timingSel % kComraDelayMenuSize]);
            const Time internal = t.tRAS + delay + t.tRAS;
            const Time gap = std::max(t.tRP, slot_time - internal);
            p.act(bank, arow(k.offLo), gap)
                .pre(bank, t.tRAS)
                .act(bank, arow(k.offHi), delay)
                .pre(bank, t.tRAS);
            out.actsPerPeriod += 2;
            break;
          }
          case Tech::Simra: {
            const Time g = units::fromNs(
                kSimraGapNs[k.timingSel % kSimraGapMenuSize]);
            const RowId r1 = victim - 1;
            const RowId mask = simraMask(k.simraN);
            const RowId r2 = r1 ^ mask;
            // The open group is every bit-subset of the mask; record
            // them all as aggressors for data initialization.
            for (RowId m = 0;; m = (m - mask) & mask) {
                out.aggressors.push_back(r1 | m);
                if (m == mask)
                    break;
            }
            const Time internal = g + g + t.tRAS;
            const Time gap = std::max(t.tRP, slot_time - internal);
            p.act(bank, r1, gap)
                .pre(bank, g)
                .act(bank, r2, g)
                .pre(bank, t.tRAS);
            out.actsPerPeriod += 2;
            break;
          }
        }
    }
    if (c.refSync)
        p.ref(t.tRP).nop(t.tRFC);
    p.loopEnd();

    std::sort(out.aggressors.begin(), out.aggressors.end());
    out.aggressors.erase(
        std::unique(out.aggressors.begin(), out.aggressors.end()),
        out.aggressors.end());
    return out;
}

std::string
toJsonl(const Candidate &c, std::uint64_t idx, std::uint64_t hash,
        const char *status, std::uint64_t acts_per_period,
        std::uint64_t hc_periods, std::uint64_t hc_acts)
{
    char buf[256];
    std::string line;
    std::snprintf(buf, sizeof buf,
                  "{\"idx\":%" PRIu64 ",\"hash\":\"0x%016" PRIx64
                  "\",\"status\":\"%s\",\"trefis\":%u,"
                  "\"slots_per_trefi\":%u,\"ref_sync\":%s,"
                  "\"acts_per_period\":%" PRIu64,
                  idx, hash, status, c.trefis, c.slotsPerTrefi,
                  c.refSync ? "true" : "false", acts_per_period);
    line += buf;
    if (hc_periods != ~std::uint64_t(0)) {
        std::snprintf(buf, sizeof buf,
                      ",\"hc_periods\":%" PRIu64 ",\"hc_acts\":%" PRIu64,
                      hc_periods, hc_acts);
        line += buf;
    } else {
        line += ",\"hc_periods\":null,\"hc_acts\":null";
    }
    line += ",\"comps\":[";
    for (std::size_t i = 0; i < c.comps.size(); ++i) {
        const Component &k = c.comps[i];
        std::snprintf(buf, sizeof buf,
                      "%s{\"tech\":\"%s\",\"phase\":%u,\"stride\":%u,"
                      "\"off_lo\":%d,\"off_hi\":%d,\"simra_n\":%u,"
                      "\"timing\":%u}",
                      i > 0 ? "," : "", techName(k.tech), k.phase,
                      k.stride, k.offLo, k.offHi, k.simraN,
                      k.timingSel);
        line += buf;
    }
    line += "]}";
    return line;
}

} // namespace pud::fuzz
