#include "fuzz/campaign.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <unordered_set>

#include "bender/host.h"
#include "exec/pool.h"
#include "fuzz/measure.h"
#include "fuzz/minimize.h"
#include "hammer/hcfirst.h"
#include "hammer/tester.h"
#include "lint/absint.h"
#include "lint/effects.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace pud::fuzz {

namespace {

constexpr std::uint64_t kNoFlip = hammer::kNoFlip;

void
bumpCounter(const char *name, std::uint64_t by = 1)
{
    if (by == 0)
        return;
    if (obs::metricsOn()) [[unlikely]]
        obs::metrics().add(obs::metrics().counterId(name), by);
}

/** One candidate's measurement, writing the slot-addressed result. */
void
measureCandidate(bender::TestBench &bench,
                 const dram::DeviceConfig &dcfg,
                 const CampaignConfig &cfg, const Candidate &c,
                 RowId victim, CandidateResult &out)
{
    const BuiltPattern built = buildPattern(c, 0, victim, 1, dcfg);
    out.actsPerPeriod = built.actsPerPeriod;

    if (cfg.staticFilter) {
        // Optimistic static reachability: if even a worst-case weak
        // cell stays below the flip threshold at the full budget, the
        // search is guaranteed to burn its budget and report no-flip.
        const lint::ProgramEffects fx = lint::summarizeEffects(
            built.program.withLoopCount(0, cfg.maxPeriods), dcfg);
        const lint::EffectReport rep = lint::predictEffects(fx, dcfg);
        if (!rep.anyLikely) {
            out.status = Status::StaticSkip;
            bumpCounter("fuzz.static_skips");
            return;
        }
    }

    bumpCounter("fuzz.executed");
    const std::uint64_t hc =
        measureBuiltHc(bench, built, victim, cfg.maxPeriods);
    if (hc == kNoFlip) {
        out.status = Status::NoFlip;
        return;
    }
    out.status = Status::Effective;
    out.hcPeriods = hc;
    out.hcActs = hc * built.actsPerPeriod;
    bumpCounter("fuzz.effective");
}

/**
 * Total-ACT cost of the hand-built combinedPattern (Fig. 20/21) for
 * the campaign's victim: CoMRA and SiMRA-4 pre-phases at half their
 * standalone HC_first each, then the RowHammer phase measured by
 * combinedRh.  Returns 0 when any phase fails to flip.
 */
std::uint64_t
measureBaseline(const dram::DeviceConfig &dcfg, RowId victim)
{
    hammer::ModuleTester tester(dcfg);
    hammer::ModuleTester::Options opt;

    const std::uint64_t hc_comra = tester.comraDouble(victim, opt);
    const std::uint64_t hc_simra = tester.simraDouble(victim, 4, opt);
    if (hc_comra == kNoFlip || hc_simra == kNoFlip)
        return 0;

    hammer::ModuleTester::CombinedSpec spec;
    spec.comraFraction = 0.5;
    spec.simraFraction = 0.5;
    spec.simraN = 4;
    const std::uint64_t n_rh = tester.combinedRh(victim, spec, opt);
    if (n_rh == kNoFlip)
        return 0;

    // Same rounding as combinedRh's phase counts; every phase op
    // issues two ACTs (copy cycle, group open, double-sided round).
    const auto comra_cycles = static_cast<std::uint64_t>(
        spec.comraFraction * static_cast<double>(hc_comra));
    const auto simra_cycles = static_cast<std::uint64_t>(
        spec.simraFraction * static_cast<double>(hc_simra));
    return 2 * comra_cycles + 2 * simra_cycles + 2 * n_rh;
}

} // namespace

const char *
statusName(Status s)
{
    switch (s) {
      case Status::StaticSkip:
        return "static_skip";
      case Status::NoFlip:
        return "no_flip";
      case Status::Effective:
        return "effective";
    }
    return "?";
}

RowId
campaignVictim(dram::RowId rowsPerSubarray)
{
    // Mid-subarray, aligned to victim % 16 == 1 so SiMRA groups up to
    // N=8 sandwich it (buildPattern's contract).
    return ((rowsPerSubarray / 2) & ~RowId(15)) | 1;
}

dram::DeviceConfig
campaignDeviceConfig(const CampaignConfig &cfg)
{
    dram::DeviceConfig dcfg = dram::makeConfig(cfg.moduleId, cfg.seed);
    dcfg.banks = 1;
    dcfg.subarraysPerBank = cfg.subarraysPerBank;
    dcfg.rowsPerSubarray = cfg.rowsPerSubarray;
    dcfg.cols = 64;
    // buildPattern emits physical rows directly.
    dcfg.profile.mapping = dram::MappingScheme::Sequential;
    return dcfg;
}

std::uint64_t
measureBuiltHc(bender::TestBench &bench, const BuiltPattern &built,
               RowId victim, std::uint64_t max_periods,
               std::uint64_t *probes)
{
    dram::Device &dev = bench.device();
    const dram::RowData aggr_data(dev.config().cols,
                                  dram::DataPattern::P55);
    const dram::RowData victim_data(
        dev.config().cols, dram::negate(dram::DataPattern::P55));

    // Identical silicon for every candidate: reset to the config
    // seed (cheap arena reuse; the executor's plan cache stays warm).
    bench.reset(dev.config().seed);

    const auto trial = [&](std::uint64_t n) {
        if (probes != nullptr)
            ++*probes;
        for (RowId a : built.aggressors)
            dev.writeRowDirect(0, a, aggr_data);
        dev.writeRowDirect(0, victim, victim_data);
        bench.run(built.program.withLoopCount(0, n));
        return bench.countBitflips(0, victim, victim_data) > 0;
    };

    // Cheap reject: one probe at the full budget costs about half of
    // what the exponential ramp would spend discovering no-flip.
    if (!trial(max_periods))
        return kNoFlip;

    hammer::HcSearchConfig scfg;
    scfg.maxHammers = max_periods;
    scfg.rampStart = 64;
    return hammer::findHcFirst(scfg, trial);
}

CampaignResult
runCampaign(const CampaignConfig &cfg)
{
    if (cfg.candidates == 0)
        fatal("fuzz: campaign needs candidates >= 1");
    if (cfg.chunk == 0)
        fatal("fuzz: campaign chunk must be >= 1");
    if (cfg.maxPeriods == 0)
        fatal("fuzz: campaign needs maxPeriods >= 1");

    CampaignResult r;
    r.cfg = cfg;
    r.generated = cfg.candidates;

    // ---- 1. generate + dedup (serial: corpus order is canonical) ----
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(cfg.candidates, 1u << 22)));
    for (std::uint64_t i = 0; i < cfg.candidates; ++i) {
        Candidate c = generateCandidate(cfg.seed, i);
        const std::uint64_t h = shapeHash(c);
        if (!seen.insert(h).second) {
            ++r.dedupHits;
            continue;
        }
        CandidateResult cr;
        cr.index = i;
        cr.hash = h;
        r.results.push_back(cr);
        r.corpus.push_back(std::move(c));
    }
    bumpCounter("fuzz.candidates", r.generated);
    bumpCounter("fuzz.dedup_hits", r.dedupHits);

    // ---- 2. execute: fixed-size chunks onto the pool ----------------
    const dram::DeviceConfig dcfg = campaignDeviceConfig(cfg);
    const RowId victim = campaignVictim(cfg.rowsPerSubarray);
    const std::size_t chunks =
        (r.corpus.size() + cfg.chunk - 1) / cfg.chunk;
    exec::parallelFor(cfg.jobs, chunks, [&](std::size_t chunk_i) {
        // One bench per chunk: the executor's plan cache is unbounded
        // and a campaign sees one plan per shape, so cache lifetime
        // must be scoped to a bounded candidate count.
        bender::TestBench bench(dcfg);
        bench.executor().setPreflight(false);
        const std::size_t begin = chunk_i * cfg.chunk;
        const std::size_t end =
            std::min(begin + cfg.chunk, r.corpus.size());
        for (std::size_t i = begin; i < end; ++i)
            measureCandidate(bench, dcfg, cfg, r.corpus[i], victim,
                             r.results[i]);
    });

    for (std::size_t i = 0; i < r.results.size(); ++i) {
        const CandidateResult &cr = r.results[i];
        r.staticSkips += cr.status == Status::StaticSkip;
        r.executed += cr.status != Status::StaticSkip;
        if (cr.status != Status::Effective)
            continue;
        ++r.effective;
        if (r.bestIdx == static_cast<std::size_t>(-1) ||
            cr.hcActs < r.results[r.bestIdx].hcActs)
            r.bestIdx = i;
    }

    // ---- 3. hand-built baseline -------------------------------------
    if (cfg.baseline)
        r.baselineActs = measureBaseline(dcfg, victim);

    // ---- 4. replay + minimize the cheapest effective patterns -------
    if (cfg.minimizeTop > 0 && r.effective > 0) {
        std::vector<std::size_t> order;
        for (std::size_t i = 0; i < r.results.size(); ++i)
            if (r.results[i].status == Status::Effective)
                order.push_back(i);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (r.results[a].hcActs != r.results[b].hcActs)
                          return r.results[a].hcActs <
                                 r.results[b].hcActs;
                      return a < b;
                  });
        const std::size_t top = std::min<std::size_t>(
            order.size(), static_cast<std::size_t>(cfg.minimizeTop));
        bender::TestBench bench(dcfg);
        bench.executor().setPreflight(false);
        for (std::size_t k = 0; k < top; ++k) {
            r.minimized.push_back(
                minimizePattern(bench, dcfg, r.corpus[order[k]],
                                victim, cfg.maxPeriods, order[k]));
            bumpCounter("fuzz.minimizer_probes",
                        r.minimized.back().probes);
        }
    }
    return r;
}

void
writeCorpusJsonl(const CampaignResult &r, std::ostream &os)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"schema\":\"pud-fuzz-corpus-v1\",\"module\":"
                  "\"%s\",\"seed\":%" PRIu64 ",\"candidates\":%" PRIu64
                  ",\"unique\":%zu,\"dedup_hits\":%" PRIu64
                  ",\"max_periods\":%" PRIu64 ",\"baseline_acts\":%" PRIu64
                  "}\n",
                  r.cfg.moduleId.c_str(), r.cfg.seed, r.generated,
                  r.corpus.size(), r.dedupHits, r.cfg.maxPeriods,
                  r.baselineActs);
    os << buf;
    for (std::size_t i = 0; i < r.corpus.size(); ++i) {
        const CandidateResult &cr = r.results[i];
        os << toJsonl(r.corpus[i], cr.index, cr.hash,
                      statusName(cr.status), cr.actsPerPeriod,
                      cr.hcPeriods, cr.hcActs)
           << "\n";
    }
}

namespace {

std::string
describeCandidate(const Candidate &c)
{
    char buf[128];
    std::string s;
    std::snprintf(buf, sizeof buf,
                  "%u tREFI x %u slots, ref_sync=%s, %zu components:",
                  c.trefis, c.slotsPerTrefi,
                  c.refSync ? "yes" : "no", c.comps.size());
    s += buf;
    for (const Component &k : c.comps) {
        std::snprintf(
            buf, sizeof buf,
            "\n    %-9s phase %2u stride %2u off (%d,%d) simraN %u "
            "timing %u",
            techName(k.tech), k.phase, k.stride, k.offLo, k.offHi,
            k.simraN, k.timingSel);
        s += buf;
    }
    return s;
}

} // namespace

std::string
summarize(const CampaignResult &r)
{
    char buf[256];
    std::string s;
    std::snprintf(buf, sizeof buf,
                  "=== pud::fuzz campaign: %s seed %" PRIu64
                  " ===\n"
                  "candidates %" PRIu64 " (unique %zu, dedup hits %" PRIu64
                  ")\n"
                  "static-skipped %" PRIu64 "  executed %" PRIu64
                  "  effective %" PRIu64 "\n",
                  r.cfg.moduleId.c_str(), r.cfg.seed, r.generated,
                  r.corpus.size(), r.dedupHits, r.staticSkips,
                  r.executed, r.effective);
    s += buf;

    if (r.baselineActs > 0) {
        std::snprintf(buf, sizeof buf,
                      "hand-built combinedPattern baseline: %" PRIu64
                      " aggressor ACTs\n",
                      r.baselineActs);
        s += buf;
    } else {
        s += "hand-built combinedPattern baseline: not measured\n";
    }

    if (r.bestIdx != static_cast<std::size_t>(-1)) {
        const CandidateResult &b = r.results[r.bestIdx];
        std::snprintf(buf, sizeof buf,
                      "best pattern: corpus idx %" PRIu64
                      " hash 0x%016" PRIx64 "\n  hc %" PRIu64
                      " periods x %" PRIu64 " acts/period = %" PRIu64
                      " aggressor ACTs\n  ",
                      b.index, b.hash, b.hcPeriods, b.actsPerPeriod,
                      b.hcActs);
        s += buf;
        s += describeCandidate(r.corpus[r.bestIdx]);
        s += "\n";
        if (r.baselineActs > 0) {
            std::snprintf(
                buf, sizeof buf,
                "fuzzed best vs baseline: %" PRIu64 " vs %" PRIu64
                " ACTs (%s)\n",
                b.hcActs, r.baselineActs,
                b.hcActs <= r.baselineActs ? "fuzzer matched or beat "
                                             "the hand-built pattern"
                                           : "baseline still ahead");
            s += buf;
        }
    } else {
        s += "best pattern: none effective\n";
    }

    for (const MinimizedPattern &m : r.minimized) {
        std::snprintf(buf, sizeof buf,
                      "minimized corpus idx %" PRIu64
                      ": acts %" PRIu64 " -> %" PRIu64
                      ", aggressor rows %zu -> %zu (%" PRIu64
                      " probes)\n  ",
                      r.results[m.corpusIdx].index, m.originalActs,
                      m.minimizedActs, m.aggressorsBefore,
                      m.aggressorsAfter, m.probes);
        s += buf;
        s += describeCandidate(m.minimized);
        s += "\n  intensity sweep (stride scale -> total ACTs):";
        for (const auto &[scale, acts] : m.intensitySweep) {
            if (acts == kNoFlip)
                std::snprintf(buf, sizeof buf, " %dx:no-flip", scale);
            else
                std::snprintf(buf, sizeof buf, " %dx:%" PRIu64, scale,
                              acts);
            s += buf;
        }
        s += "\n";
    }
    return s;
}

} // namespace pud::fuzz
