/**
 * @file
 * The fuzzing campaign driver: generate -> dedup -> execute -> export.
 *
 * Pipeline:
 *   1. Generation + dedup run serially over indices 0..candidates-1;
 *      the first candidate with a given shapeHash enters the corpus
 *      (order-stable, so the corpus is independent of --jobs).
 *   2. Unique candidates execute in fixed-size chunks fanned onto
 *      exec::parallelFor.  Each chunk owns a fresh TestBench -- the
 *      executor's plan cache is unbounded and a campaign sees one
 *      plan per shape, so benches must be scoped to bound memory --
 *      and each candidate resets the bench to the campaign seed, so
 *      every pattern competes on identical silicon.  Results are
 *      slot-addressed by corpus index (the PR-2 determinism story).
 *   3. A candidate is first probed once at the full period budget;
 *      only if the victim flips does the bisection HC_first search
 *      run.  An optional static pre-filter (lint::predictEffects)
 *      skips candidates that cannot flip even in the best case.
 *   4. Effective patterns are compared by *total aggressor ACTs*
 *      (hc_periods x acts_per_period), the cost metric that makes a
 *      sparse pattern and a dense pattern commensurable and matches
 *      the hand-built combinedPattern baseline's accounting.
 *
 * Determinism contract: summarize() output and the JSONL corpus are
 * byte-identical across --jobs values for a fixed (module, seed,
 * candidates, budget) tuple.
 */

#ifndef PUD_FUZZ_CAMPAIGN_H
#define PUD_FUZZ_CAMPAIGN_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/fuzz.h"

namespace pud::fuzz {

/** Knobs of one campaign. */
struct CampaignConfig
{
    /** Calibration family (dram::makeConfig module id). */
    std::string moduleId = "HMA81GU7AFR8N-UH";

    /** Candidates to generate (pre-dedup). */
    std::uint64_t candidates = 10000;

    std::uint64_t seed = 1;
    int jobs = 1;

    /** Campaign device geometry (kept small: the fuzzer only needs
     *  one subarray of headroom around the victim). */
    dram::SubarrayId subarraysPerBank = 2;
    dram::RowId rowsPerSubarray = 64;

    /** HC_first budget, in base periods of each candidate. */
    std::uint64_t maxPeriods = 20000;

    /** Candidates per execution chunk (plan-cache scope).  Fixed
     *  regardless of --jobs so chunk boundaries are deterministic. */
    std::size_t chunk = 256;

    /** Skip candidates the static effect predictor proves flipless. */
    bool staticFilter = true;

    /** Measure the hand-built combinedPattern baseline (Fig. 20). */
    bool baseline = true;

    /** Minimize the best `minimizeTop` effective patterns. */
    int minimizeTop = 1;
};

/** Per-candidate outcome. */
enum class Status : std::uint8_t {
    StaticSkip,  //!< predictor: cannot flip at the budget
    NoFlip,      //!< executed, no flip within maxPeriods
    Effective,   //!< flipped; hcPeriods/hcActs are valid
};

const char *statusName(Status s);

struct CandidateResult
{
    std::uint64_t index = 0;  //!< generation index of first sighting
    std::uint64_t hash = 0;
    Status status = Status::NoFlip;
    std::uint64_t actsPerPeriod = 0;
    std::uint64_t hcPeriods = ~std::uint64_t(0);  //!< kNoFlip sentinel
    std::uint64_t hcActs = ~std::uint64_t(0);
};

/** Replayer/minimizer output for one effective pattern. */
struct MinimizedPattern
{
    std::size_t corpusIdx = 0;
    Candidate original;
    Candidate minimized;
    std::uint64_t originalActs = 0;   //!< replayed hc_acts
    std::uint64_t minimizedActs = 0;  //!< after reduction
    std::size_t aggressorsBefore = 0;
    std::size_t aggressorsAfter = 0;
    std::uint64_t probes = 0;  //!< HC searches the minimizer spent

    /** Fig-21-style intensity sweep: stride scale -> hc_acts (kNoFlip
     *  sentinel when the thinned pattern stops flipping). */
    std::vector<std::pair<int, std::uint64_t>> intensitySweep;
};

struct CampaignResult
{
    CampaignConfig cfg;

    /** Unique candidates in generation order (the corpus). */
    std::vector<Candidate> corpus;

    /** Slot-addressed results, parallel to `corpus`. */
    std::vector<CandidateResult> results;

    std::uint64_t generated = 0;
    std::uint64_t dedupHits = 0;
    std::uint64_t staticSkips = 0;
    std::uint64_t executed = 0;
    std::uint64_t effective = 0;

    /** Hand-built combinedPattern cost in total aggressor ACTs
     *  (0 when disabled or when the baseline does not flip). */
    std::uint64_t baselineActs = 0;

    /** Corpus index of the cheapest effective pattern, or npos. */
    std::size_t bestIdx = static_cast<std::size_t>(-1);

    std::vector<MinimizedPattern> minimized;
};

/** Run a full campaign.  Fatal on nonsensical configuration. */
CampaignResult runCampaign(const CampaignConfig &cfg);

/** Write the JSONL corpus (header line + one line per entry). */
void writeCorpusJsonl(const CampaignResult &r, std::ostream &os);

/** Deterministic human-readable summary (stdout of the CLI). */
std::string summarize(const CampaignResult &r);

/** The campaign's victim row for a geometry (physical, subarray 0). */
RowId campaignVictim(dram::RowId rowsPerSubarray);

/** The device config a campaign uses for `cfg`. */
dram::DeviceConfig campaignDeviceConfig(const CampaignConfig &cfg);

} // namespace pud::fuzz

#endif // PUD_FUZZ_CAMPAIGN_H
