/**
 * @file
 * Frequency-domain pattern fuzzing over the bender ISA (ROADMAP 1).
 *
 * A candidate is a Blacksmith-style frequency-domain description of a
 * hammering pattern: a base period of `trefis` refresh intervals, each
 * divided into `slotsPerTrefi` activation slots, plus an ordered list
 * of components.  Each component claims slots on a (phase, stride)
 * lattice -- phase is its offset relative to the REF cadence, stride
 * its period in slots (regularity), and the number of slots it wins
 * its intensity -- and stamps one technique-specific access group
 * (RowHammer, CoMRA copy cycle, SiMRA group open, or a RowPress-style
 * long-t_AggOn activation) into every slot it owns.  Components are
 * drawn against the PatternTimings menu the calibrated experiments
 * use, so every candidate stays inside the device model's calibrated
 * envelope.
 *
 * The encoding is deliberately tiny and integer-valued: the canonical
 * byte serialization doubles as the corpus dedup key (shapeHash) and
 * as the JSONL export format, and candidate i is a pure function of
 * (seed, i) via counter-based keyed RNG streams, which is what makes
 * campaign corpora byte-identical across --jobs values.
 */

#ifndef PUD_FUZZ_FUZZ_H
#define PUD_FUZZ_FUZZ_H

#include <cstdint>
#include <string>
#include <vector>

#include "bender/program.h"
#include "dram/config.h"
#include "hammer/patterns.h"
#include "util/rng.h"

namespace pud::fuzz {

using bender::Program;
using dram::BankId;
using dram::RowId;

/** Technique class a component stamps into its slots. */
enum class Tech : std::uint8_t {
    RowHammer = 0,  //!< ACT / PRE at nominal timings
    Comra = 1,      //!< ACT src, PRE(tRAS), violated-tRP ACT dst
    Simra = 2,      //!< ACT r1, violated-tRAS PRE, violated-tRP ACT r2
    Press = 3,      //!< RowHammer held open (long t_AggOn)
};

const char *techName(Tech t);

/** One frequency-domain access component of a candidate. */
struct Component
{
    Tech tech = Tech::RowHammer;

    /** First claimed slot, relative to the period start (and hence to
     *  the REF cadence when the candidate is refSync). */
    std::uint8_t phase = 0;

    /** Slot lattice period: the component claims every stride-th slot
     *  from `phase` that an earlier component has not claimed. */
    std::uint8_t stride = 1;

    /**
     * Aggressor placement, as physical-row offsets from the campaign
     * victim.  RowHammer/Press alternate offLo/offHi per claimed slot
     * (offHi == 0 means single-sided: every slot hits offLo); CoMRA
     * uses (src = offLo, dst = offHi).  Ignored for SiMRA, whose
     * group is derived from simraN below.
     */
    std::int8_t offLo = -1;
    std::int8_t offHi = 1;

    /** SiMRA group size (2 / 4 / 8); 0 for other techniques. */
    std::uint8_t simraN = 0;

    /** Index into the PatternTimings menu (technique-dependent). */
    std::uint8_t timingSel = 0;
};

/** One fuzzing candidate: a periodic frequency-domain pattern. */
struct Candidate
{
    std::uint8_t trefis = 1;         //!< period length in tREFIs
    std::uint8_t slotsPerTrefi = 16; //!< activation slots per tREFI
    bool refSync = false;            //!< REF at every tREFI boundary
    std::vector<Component> comps;    //!< ordered; earlier wins slots
};

/**
 * Canonical 64-bit shape hash (FNV-1a over the candidate's canonical
 * byte serialization).  Two candidates with equal hashes are treated
 * as duplicates by the campaign corpus.
 */
std::uint64_t shapeHash(const Candidate &c);

/**
 * Generate candidate `index` of a seeded campaign stream.  Pure
 * function of (seed, index): any thread may materialize any candidate
 * in any order, which the campaign's determinism contract relies on.
 */
Candidate generateCandidate(std::uint64_t seed, std::uint64_t index);

/** A candidate compiled against a concrete victim. */
struct BuiltPattern
{
    /**
     * The program: loopBegin(periods){ one base period } loopEnd with
     * the period loop at index 0, so sweeps patch the trip count via
     * withLoopCount(0, n) and share one executor plan per shape.
     */
    Program program;

    /** Physical aggressor rows the pattern activates (sorted, unique). */
    std::vector<RowId> aggressors;

    /** Aggressor-row activations in one base period. */
    std::uint64_t actsPerPeriod = 0;
};

/**
 * Compile `c` for a victim at physical row `victim` of `bank`.
 * The victim must satisfy victim % 8 == 1 and sit at least
 * kVictimMargin rows inside its subarray so every component's
 * aggressor group stays within the subarray (fatal otherwise).
 */
BuiltPattern buildPattern(const Candidate &c, BankId bank, RowId victim,
                          std::uint64_t periods,
                          const dram::DeviceConfig &cfg);

/** Rows of margin buildPattern needs around the victim. */
constexpr RowId kVictimMargin = 16;

/** Menu sizes exposed for tests. */
constexpr int kAggOnMenuSize = 4;
constexpr int kComraDelayMenuSize = 3;
constexpr int kSimraGapMenuSize = 3;

/** One corpus line (without the trailing newline). */
std::string toJsonl(const Candidate &c, std::uint64_t idx,
                    std::uint64_t hash, const char *status,
                    std::uint64_t acts_per_period,
                    std::uint64_t hc_periods, std::uint64_t hc_acts);

} // namespace pud::fuzz

#endif // PUD_FUZZ_FUZZ_H
