/**
 * @file
 * Replayer / minimizer for effective fuzzed patterns.
 *
 * Given an effective candidate, the minimizer first replays it (the
 * measurement is deterministic, so the replay must reproduce the
 * campaign's HC_first), then greedily bisects it down to a minimal
 * aggressor set: it repeatedly tries dropping whole components and
 * single-siding double-sided ones, keeping any reduction whose total
 * ACT cost does not exceed the current best.  Finally it sweeps
 * intensity Fig-21-style by thinning every component's slot lattice
 * (stride x 2, x4, x8) and recording the cost at each density.
 *
 * Contract: purely deterministic -- same bench config and candidate
 * in, same MinimizedPattern out; every HC search it runs is counted
 * in `probes` (exported as the fuzz.minimizer_probes counter).
 */

#ifndef PUD_FUZZ_MINIMIZE_H
#define PUD_FUZZ_MINIMIZE_H

#include "bender/host.h"
#include "fuzz/campaign.h"

namespace pud::fuzz {

MinimizedPattern minimizePattern(bender::TestBench &bench,
                                 const dram::DeviceConfig &dcfg,
                                 const Candidate &original,
                                 RowId victim,
                                 std::uint64_t max_periods,
                                 std::size_t corpus_idx);

} // namespace pud::fuzz

#endif // PUD_FUZZ_MINIMIZE_H
