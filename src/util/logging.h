/**
 * @file
 * Minimal status/error reporting in the spirit of gem5's logging.hh.
 *
 * fatal()  -- unrecoverable condition that is the *user's* fault
 *             (bad configuration, impossible experiment parameters);
 *             prints and exits with status 1.
 * panic()  -- a library bug: a condition that must never happen
 *             regardless of input; prints and aborts.
 * warn()   -- something is suspicious but the run can continue.
 * inform() -- normal progress messages (suppressed when quiet).
 */

#ifndef PUD_UTIL_LOGGING_H
#define PUD_UTIL_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pud {

namespace detail {

/** Global verbosity switch for inform(); warn/fatal/panic always print. */
inline bool &
verboseFlag()
{
    static bool verbose = true;
    return verbose;
}

} // namespace detail

/** Enable or disable inform() output. */
inline void setVerbose(bool on) { detail::verboseFlag() = on; }

template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    std::fprintf(stderr, "fatal: ");
    std::fprintf(stderr, fmt, args...);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

[[noreturn]] inline void
fatal(const char *msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg);
    std::exit(1);
}

template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    std::fprintf(stderr, "panic: ");
    std::fprintf(stderr, fmt, args...);
    std::fprintf(stderr, "\n");
    std::abort();
}

[[noreturn]] inline void
panic(const char *msg)
{
    std::fprintf(stderr, "panic: %s\n", msg);
    std::abort();
}

template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    std::fprintf(stderr, "warn: ");
    std::fprintf(stderr, fmt, args...);
    std::fprintf(stderr, "\n");
}

inline void
warn(const char *msg)
{
    std::fprintf(stderr, "warn: %s\n", msg);
}

template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    if (!detail::verboseFlag())
        return;
    std::fprintf(stderr, "info: ");
    std::fprintf(stderr, fmt, args...);
    std::fprintf(stderr, "\n");
}

inline void
inform(const char *msg)
{
    if (!detail::verboseFlag())
        return;
    std::fprintf(stderr, "info: %s\n", msg);
}

} // namespace pud

#endif // PUD_UTIL_LOGGING_H
