/**
 * @file
 * Plain-text table and CSV emission for bench output.
 *
 * The bench binaries print paper-style rows; Table collects cells and
 * renders them with aligned columns so the output is directly
 * comparable with the paper's tables and figure series.
 */

#ifndef PUD_UTIL_TABLE_H
#define PUD_UTIL_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace pud {

/** A simple column-aligned text table with an optional CSV dump. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Append a row; it must have as many cells as the header. */
    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Format a double with the given precision. */
    static std::string
    num(double v, int precision = 2)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
        return buf;
    }

    /** Format an integer-valued count. */
    static std::string
    count(long long v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", v);
        return buf;
    }

    /** Render with aligned columns to the given stream. */
    void
    print(std::FILE *out = stdout) const
    {
        std::vector<std::size_t> width(header_.size(), 0);
        for (std::size_t c = 0; c < header_.size(); ++c)
            width[c] = header_[c].size();
        for (const auto &row : rows_)
            for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], row[c].size());

        auto print_row = [&](const std::vector<std::string> &row) {
            for (std::size_t c = 0; c < width.size(); ++c) {
                const std::string &cell = c < row.size() ? row[c] : empty_;
                std::fprintf(out, "%-*s", static_cast<int>(width[c] + 2),
                             cell.c_str());
            }
            std::fprintf(out, "\n");
        };

        print_row(header_);
        std::size_t total = 0;
        for (auto w : width)
            total += w + 2;
        std::string rule(total, '-');
        std::fprintf(out, "%s\n", rule.c_str());
        for (const auto &row : rows_)
            print_row(row);
    }

    /** Dump as CSV (for downstream plotting). */
    void
    printCsv(std::FILE *out) const
    {
        auto emit = [&](const std::vector<std::string> &row) {
            for (std::size_t c = 0; c < row.size(); ++c)
                std::fprintf(out, "%s%s", c ? "," : "", row[c].c_str());
            std::fprintf(out, "\n");
        };
        emit(header_);
        for (const auto &row : rows_)
            emit(row);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::string empty_;
};

} // namespace pud

#endif // PUD_UTIL_TABLE_H
