/**
 * @file
 * Time units used throughout the library.
 *
 * All DRAM command timestamps and timing parameters are expressed in
 * picoseconds held in a 64-bit signed integer, which covers ~106 days
 * of simulated time -- far beyond any refresh window.  Picosecond
 * resolution represents every DDR4 timing parameter in the paper
 * (including the violated 1.5 ns / 3 ns SiMRA delays) exactly.
 */

#ifndef PUD_UTIL_UNITS_H
#define PUD_UTIL_UNITS_H

#include <cstdint>

namespace pud {

/** Simulated time in picoseconds. */
using Time = std::int64_t;

namespace units {

constexpr Time ps = 1;
constexpr Time ns = 1000 * ps;
constexpr Time us = 1000 * ns;
constexpr Time ms = 1000 * us;

/** Convert a floating-point nanosecond figure to Time. */
constexpr Time
fromNs(double nanoseconds)
{
    return static_cast<Time>(nanoseconds * static_cast<double>(ns));
}

/** Convert Time to floating-point nanoseconds (for reporting). */
constexpr double
toNs(Time t)
{
    return static_cast<double>(t) / static_cast<double>(ns);
}

/** Convert Time to floating-point microseconds (for reporting). */
constexpr double
toUs(Time t)
{
    return static_cast<double>(t) / static_cast<double>(us);
}

} // namespace units

/** DRAM chip temperature in degrees Celsius. */
using Celsius = double;

} // namespace pud

#endif // PUD_UTIL_UNITS_H
