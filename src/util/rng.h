/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * characterization runs.
 *
 * All randomness in the library flows through Rng so that a single
 * 64-bit seed reproduces an entire experiment, including the sampled
 * weak-cell population of every simulated DRAM module.  The generator
 * is xoshiro256** (Blackman & Vigna), which is fast, has a 256-bit
 * state, and passes BigCrush.
 */

#ifndef PUD_UTIL_RNG_H
#define PUD_UTIL_RNG_H

#include <cstddef>
#include <cstdint>
#include <cmath>
#include <numbers>

namespace pud {

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also
 * be plugged into <random> facilities, although the built-in helpers
 * below avoid libstdc++ distribution-implementation differences and
 * keep results bit-stable across platforms.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via SplitMix64 so that nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit output. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    std::uint64_t operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Rejection-free for our purposes: bias is < 2^-64 * bound and
        // irrelevant for sampling experiments, but we keep one widening
        // multiply for speed.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli trial with success probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    double
    gaussian()
    {
        double u1 = uniform();
        // Avoid log(0).
        if (u1 < 1e-300)
            u1 = 1e-300;
        const double u2 = uniform();
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * std::numbers::pi * u2);
    }

    /** Normal with the given mean and standard deviation. */
    double
    gaussian(double mean, double sigma)
    {
        return mean + sigma * gaussian();
    }

    /**
     * Lognormal sample parameterized by the distribution median and the
     * sigma of the underlying normal.  Used for per-row read-disturbance
     * thresholds, whose empirical distributions are heavy-tailed.
     */
    double
    logNormalMedian(double median, double sigma)
    {
        return median * std::exp(sigma * gaussian());
    }

    /**
     * Fill `out[0..n)` with the next n raw outputs.  Draw-for-draw
     * identical to calling next() n times -- the batch form exists so
     * hot loops (weak-cell population, per-close damage folds) can
     * advance the state in one pass without the per-call function
     * boundary, never so it can reorder or skip draws.
     */
    void
    fill(std::uint64_t *out, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next();
    }

    /**
     * Fill `out[0..n)` with standard-normal draws, bit-identical to n
     * successive gaussian() calls (same Box-Muller, two uniforms per
     * draw, no cached spare).  Batching keeps the sqrt/log/cos chain in
     * one loop the compiler can software-pipeline; callers rely on the
     * sequence equivalence for seed-stable populations.
     */
    void
    gaussianBlock(double *out, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = gaussian();
    }

    /** Fork an independent stream keyed by an arbitrary tag. */
    Rng
    fork(std::uint64_t tag)
    {
        return Rng(next() ^ (tag * 0xD1342543DE82EF95ULL));
    }

    /** SplitMix64 finalizer: a strong 64-bit mixing function. */
    static std::uint64_t
    mix64(std::uint64_t x)
    {
        x += 0x9E3779B97F4A7C15ULL;
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
        return x ^ (x >> 31);
    }

    /**
     * Counter-based stream: an Rng whose seed is a hash of (seed, a,
     * b).  Unlike fork(), this needs no generator state to derive from
     * -- stream (a, b) can be created directly, in any order, on any
     * thread -- which is what lets per-row weak-cell populations be
     * drawn lazily on first touch yet bit-identically to an eager
     * sweep (see Device::populateRow).
     */
    static Rng
    keyed(std::uint64_t seed, std::uint64_t a, std::uint64_t b)
    {
        std::uint64_t x = mix64(seed ^ (a * 0xD1342543DE82EF95ULL));
        x = mix64(x ^ (b * 0x2545F4914F6CDD1DULL));
        return Rng(x);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace pud

#endif // PUD_UTIL_RNG_H
