/**
 * @file
 * Tiny command-line option parser for bench/example binaries.
 *
 * Supports --key=value and --flag forms; anything else is positional.
 * Bench binaries use it for scale knobs (--rows, --modules, --seed)
 * so users can trade fidelity for runtime.
 */

#ifndef PUD_UTIL_ARGS_H
#define PUD_UTIL_ARGS_H

#include <cerrno>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "util/logging.h"

namespace pud {

/** Parsed command-line options. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                auto eq = arg.find('=');
                // Move-assign (not const char* assign): works around a
                // GCC 12 -Wrestrict false positive (PR 105329) that
                // breaks -Werror builds.
                if (eq == std::string::npos)
                    options_[arg.substr(2)] = std::string("1");
                else
                    options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
            } else {
                positional_.push_back(arg);
            }
        }
    }

    bool has(const std::string &key) const { return options_.count(key); }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = options_.find(key);
        return it == options_.end() ? fallback : it->second;
    }

    /**
     * Integer value of --key=N.  Non-numeric or trailing-garbage
     * values ("--victims=abc", "--jobs=4x") are a fatal diagnostic,
     * not a silent 0 / truncation.
     */
    long
    getInt(const std::string &key, long fallback) const
    {
        auto it = options_.find(key);
        if (it == options_.end())
            return fallback;
        const char *s = it->second.c_str();
        char *end = nullptr;
        errno = 0;
        const long v = std::strtol(s, &end, 10);
        if (end == s || *end != '\0' || errno == ERANGE)
            fatal("--%s=%s: expected an integer", key.c_str(), s);
        return v;
    }

    /** Like getInt, for real-valued knobs ("--temp=82.5"). */
    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = options_.find(key);
        if (it == options_.end())
            return fallback;
        const char *s = it->second.c_str();
        char *end = nullptr;
        errno = 0;
        const double v = std::strtod(s, &end);
        if (end == s || *end != '\0' || errno == ERANGE)
            fatal("--%s=%s: expected a number", key.c_str(), s);
        return v;
    }

    const std::vector<std::string> &positional() const { return positional_; }

  private:
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

} // namespace pud

#endif // PUD_UTIL_ARGS_H
