/**
 * @file
 * Tiny command-line option parser for bench/example binaries.
 *
 * Supports --key=value and --flag forms; anything else is positional.
 * Bench binaries use it for scale knobs (--rows, --modules, --seed)
 * so users can trade fidelity for runtime.
 */

#ifndef PUD_UTIL_ARGS_H
#define PUD_UTIL_ARGS_H

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace pud {

/** Parsed command-line options. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                auto eq = arg.find('=');
                // Move-assign (not const char* assign): works around a
                // GCC 12 -Wrestrict false positive (PR 105329) that
                // breaks -Werror builds.
                if (eq == std::string::npos)
                    options_[arg.substr(2)] = std::string("1");
                else
                    options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
            } else {
                positional_.push_back(arg);
            }
        }
    }

    bool has(const std::string &key) const { return options_.count(key); }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = options_.find(key);
        return it == options_.end() ? fallback : it->second;
    }

    long
    getInt(const std::string &key, long fallback) const
    {
        auto it = options_.find(key);
        return it == options_.end() ? fallback
                                    : std::strtol(it->second.c_str(),
                                                  nullptr, 10);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = options_.find(key);
        return it == options_.end() ? fallback
                                    : std::strtod(it->second.c_str(),
                                                  nullptr);
    }

    const std::vector<std::string> &positional() const { return positional_; }

  private:
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

} // namespace pud

#endif // PUD_UTIL_ARGS_H
