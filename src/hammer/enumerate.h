/**
 * @file
 * Geometry-only victim enumeration.
 *
 * Which rows a population sweep measures is a pure function of the
 * device *geometry* (subarrays per bank, rows per subarray) -- it does
 * not depend on the seed, the calibration profile, or any simulated
 * state.  Fleet-scale sweeps exploit that: the victim list of 10^6
 * module instances is computed once from one DeviceConfig, without
 * building a single Device (ModuleTester construction is deferred to
 * the shard that actually hammers).
 */

#ifndef PUD_HAMMER_ENUMERATE_H
#define PUD_HAMMER_ENUMERATE_H

#include <vector>

#include "dram/config.h"
#include "dram/types.h"

namespace pud::hammer {

using dram::RowId;

/**
 * Subarrays tested per module: two each from the beginning, middle,
 * and end of the bank (paper §4.2), generalized for other counts and
 * deduplicated for small geometries.
 */
std::vector<dram::SubarrayId>
testedSubarrays(const dram::DeviceConfig &cfg, int count = 6);

/**
 * Sample victim rows with an even stride over the interior rows of
 * each tested subarray (the paper tests all rows; the stride caps
 * that).  `odd_only` restricts to rows sandwichable by a double-sided
 * SiMRA group (v === 1 mod 4).  Physical row addresses, ascending.
 */
std::vector<RowId> sampleVictims(const dram::DeviceConfig &cfg,
                                 RowId victims_per_subarray,
                                 bool odd_only = false,
                                 int subarrays = 6);

} // namespace pud::hammer

#endif // PUD_HAMMER_ENUMERATE_H
