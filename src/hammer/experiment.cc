#include "hammer/experiment.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "exec/pool.h"
#include "hammer/enumerate.h"
#include "lint/absint.h"
#include "lint/effects.h"
#include "lint/linter.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace pud::hammer {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

dram::DeviceConfig
populationDeviceConfig(const PopulationConfig &cfg, int module)
{
    dram::DeviceConfig dev_cfg =
        dram::makeConfig(cfg.moduleId, cfg.seed + module);
    if (cfg.rowsPerSubarray)
        dev_cfg.rowsPerSubarray = cfg.rowsPerSubarray;
    return dev_cfg;
}

std::vector<RowId>
populationVictims(const PopulationConfig &cfg)
{
    if (cfg.modules <= 0)
        return {};
    // Geometry-only (no Device is built): every module instance shares
    // the same geometry, so one enumeration serves the whole fleet.
    return sampleVictims(populationDeviceConfig(cfg, 0),
                         cfg.victimsPerSubarray, cfg.oddOnly);
}

std::vector<ShardPlan>
planPopulationShards(const PopulationConfig &cfg,
                     std::size_t victims_per_module)
{
    std::vector<ShardPlan> shards;
    const std::size_t n = victims_per_module;
    const std::size_t chunk =
        cfg.perVictimChunks ? std::max<std::size_t>(1, cfg.victimChunk)
                            : std::max<std::size_t>(1, n);
    for (int m = 0; m < cfg.modules; ++m) {
        const std::size_t base = static_cast<std::size_t>(m) * n;
        for (std::size_t begin = 0; begin < n; begin += chunk) {
            ShardPlan s;
            s.module = m;
            s.victimBegin = begin;
            s.victimEnd = std::min(n, begin + chunk);
            s.slotBase = base + begin;
            shards.push_back(s);
        }
        if (n == 0) {
            // Keep one (empty) shard per module so telemetry still
            // reports every module instance.
            shards.push_back(ShardPlan{m, 0, 0, base});
        }
    }
    return shards;
}

std::vector<std::vector<double>>
measurePopulation(const PopulationConfig &cfg,
                  const std::vector<MeasureFn> &measures,
                  PopulationTelemetry *telemetry)
{
    const auto wall_start = std::chrono::steady_clock::now();
    const int jobs = exec::resolveJobs(cfg.jobs);

    // Enumerate the victim population up front so every measurement
    // has a pre-sized result slot: slot order is (module, victim,
    // measure), exactly the serial iteration order, so the output can
    // never depend on how shards are scheduled.  Enumeration is
    // geometry-only and shared by every instance: sweep startup is
    // O(1) in the module count, not O(modules) device builds.
    const std::vector<RowId> victims = populationVictims(cfg);
    const std::size_t total_victims =
        victims.size() *
        static_cast<std::size_t>(std::max(0, cfg.modules));

    // Shard at module granularity by default; opt-in victim chunks cut
    // each module's list into fixed-size pieces (independent of jobs).
    const std::vector<ShardPlan> shards =
        planPopulationShards(cfg, victims.size());

    std::vector<std::vector<double>> series(
        measures.size(), std::vector<double>(total_victims, 0.0));
    std::vector<ShardReport> reports(shards.size());

    if (obs::traceOn()) [[unlikely]]
        obs::trace().event(
            "sweep_start",
            {{"module_id", cfg.moduleId},
             {"modules", static_cast<std::int64_t>(cfg.modules)},
             {"victims", total_victims},
             {"measures", measures.size()},
             {"shards", shards.size()},
             {"jobs", static_cast<std::int64_t>(jobs)}});

    exec::parallelFor(jobs, shards.size(), [&](std::size_t si) {
        const ShardPlan &shard = shards[si];
        const auto shard_start = std::chrono::steady_clock::now();

        // Each shard owns a private tester seeded exactly like the
        // serial loop's per-module tester, so module shards replay the
        // serial path verbatim and chunk shards are reproducible.
        ModuleTester tester(populationDeviceConfig(cfg, shard.module));
        if (cfg.setup)
            cfg.setup(tester);

        for (std::size_t v = shard.victimBegin; v < shard.victimEnd;
             ++v) {
            const std::size_t slot =
                shard.slotBase + (v - shard.victimBegin);
            for (std::size_t i = 0; i < measures.size(); ++i) {
                const std::uint64_t hc =
                    measures[i](tester, victims[v]);
                series[i][slot] =
                    hc == kNoFlip
                        ? std::numeric_limits<double>::quiet_NaN()
                        : static_cast<double>(hc);
            }
        }

        ShardReport &r = reports[si];
        r.module = shard.module;
        r.firstSlot = shard.slotBase;
        r.victims = shard.victimEnd - shard.victimBegin;
        r.workUnits = r.victims * measures.size();
        r.seconds = secondsSince(shard_start);
        r.acts = tester.device().counters().acts;
        r.populatedRows = tester.device().populatedRowCount();
        const bender::ExecStats &xs = tester.bench().executor().stats();
        r.fastPathIterations = xs.fastPathIterations;
        r.planCacheHits = xs.planCacheHits;
        r.planCacheMisses = xs.planCacheMisses;
        if (obs::traceOn()) [[unlikely]]
            obs::trace().event(
                "work_unit",
                {{"module", static_cast<std::int64_t>(r.module)},
                 {"first_slot", r.firstSlot},
                 {"victims", r.victims},
                 {"units", r.workUnits},
                 {"seconds", r.seconds},
                 {"fastpath_iters", r.fastPathIterations},
                 {"plan_hits", r.planCacheHits},
                 {"plan_misses", r.planCacheMisses}});
    });

    if (obs::traceOn()) [[unlikely]] {
        std::size_t units = 0;
        for (const ShardReport &r : reports)
            units += r.workUnits;
        obs::trace().event("sweep_end",
                           {{"wall_s", secondsSince(wall_start)},
                            {"units", units},
                            {"shards", reports.size()}});
    }

    if (telemetry) {
        telemetry->jobs = jobs;
        telemetry->perVictimChunks = cfg.perVictimChunks;
        telemetry->shards = std::move(reports);
        telemetry->wallSeconds = secondsSince(wall_start);
    }
    return series;
}

std::vector<std::vector<double>>
dropIncomplete(const std::vector<std::vector<double>> &series)
{
    if (series.empty())
        return {};
    const std::size_t n = series.front().size();
    for (const auto &s : series)
        if (s.size() != n)
            panic("dropIncomplete: ragged series");

    std::vector<std::vector<double>> out(series.size());
    for (std::size_t i = 0; i < n; ++i) {
        bool ok = true;
        for (const auto &s : series)
            if (std::isnan(s[i]))
                ok = false;
        if (!ok)
            continue;
        for (std::size_t k = 0; k < series.size(); ++k)
            out[k].push_back(series[k][i]);
    }
    return out;
}

std::uint64_t
runTrrExperiment(ModuleTester &tester, TrrTechnique tech,
                 const TrrConfig &cfg, bool trr_enabled,
                 dram::MitigationHook *hook)
{
    dram::Device &dev = tester.device();
    const ColId cols = dev.config().cols;
    const RowId rps = dev.config().rowsPerSubarray;
    const dram::SubarrayId sub = dev.config().subarraysPerBank / 2;
    const RowId base = sub * rps;

    // Profiling (below) must observe the chip's *intrinsic*
    // vulnerability, exactly as the U-TRR methodology does on real
    // chips: TRR stays off until the measured pattern runs.
    dev.setTrrEnabled(false);

    // SiMRA is most effective with 1 -> 0 flips (Obs. 14): an all-ones
    // victim (all-zeros aggressor) pattern.  RowHammer and CoMRA use
    // the checkerboard WCDP.
    const DataPattern aggr_pattern = tech == TrrTechnique::Simra
                                         ? DataPattern::P00
                                         : DataPattern::P55;
    const RowData aggr_data(cols, aggr_pattern);
    const RowData victim_data(cols, dram::negate(aggr_pattern));

    PatternTimings t;

    // Aggressor geometry in the middle of the subarray.
    std::vector<RowId> aggressors_phys;
    Program program;
    const RowId mid = base + rps / 2;

    switch (tech) {
      case TrrTechnique::RowHammer:
      case TrrTechnique::Comra: {
        // Like the U-TRR methodology, profile candidate victims first
        // and aim the N-sided pattern at the most vulnerable one.
        RowId best_victim = mid + 1;
        std::uint64_t best_hc = ~std::uint64_t(0);
        ModuleTester::Options profile_opt;
        profile_opt.pattern = aggr_pattern;
        for (RowId v = base + 5; v + 8 + 2 * cfg.nSided < base + rps;
             v += 4) {
            const std::uint64_t hc = tester.rhDouble(v, profile_opt);
            if (hc < best_hc) {
                best_hc = hc;
                best_victim = v;
            }
        }

        // N aggressors spaced by 2, sandwiching odd victims; for CoMRA
        // they are walked as (src, dst) pairs.
        int n = cfg.nSided;
        if (tech == TrrTechnique::Comra && n % 2)
            ++n;
        for (int i = 0; i < n; ++i)
            aggressors_phys.push_back(best_victim - 1 +
                                      2 * static_cast<RowId>(i));
        std::vector<RowId> aggressors_logical;
        for (RowId a : aggressors_phys)
            aggressors_logical.push_back(dev.toLogical(a));
        const RowId dummy = dev.toLogical(base + 4);
        const std::uint64_t acts_per_cycle =
            static_cast<std::uint64_t>(cfg.actsPerTrefi) /
            aggressors_phys.size();
        const std::uint64_t cycles = std::max<std::uint64_t>(
            1, cfg.hammersPerAggressor / std::max<std::uint64_t>(
                                             1, acts_per_cycle));
        program = trrBypassPattern(cfg.bank, aggressors_logical, dummy,
                                   tech == TrrTechnique::Comra, cycles,
                                   t, cfg.actsPerTrefi);
        break;
      }
      case TrrTechnique::Simra: {
        // A spaced (bit-combination) group leaves its sandwiched
        // victims invisible to the TRR sampler, which only observes
        // the two issued ACT addresses (Obs. 26).  32-row activation
        // only resolves as a contiguous block in the modeled decoder
        // (paper footnote 3), so it falls back to edge victims.
        std::optional<SimraPlan> plan;
        if (cfg.simraN <= 16) {
            const RowId victim = (mid & ~RowId(3)) | 1;
            plan = tester.planSimraDouble(victim, cfg.simraN);
        } else {
            plan = tester.planSimraSingle(
                ((mid / cfg.simraN) * cfg.simraN) - 1, cfg.simraN);
        }
        if (!plan)
            fatal("runTrrExperiment: no SiMRA-%d group near row %u",
                  cfg.simraN, mid);
        aggressors_phys = plan->group;
        const std::uint64_t ops_per_cycle =
            static_cast<std::uint64_t>(cfg.actsPerTrefi) / 2;
        const std::uint64_t cycles = std::max<std::uint64_t>(
            1, cfg.hammersPerAggressor / ops_per_cycle);
        program = trrSimraPattern(cfg.bank, dev.toLogical(plan->r1),
                                  dev.toLogical(plan->r2), cycles, t,
                                  cfg.actsPerTrefi);
        break;
      }
    }

    // Enable the mechanism under test only now, with a clean sampler:
    // the profiling sweep above issued thousands of ACTs that would
    // otherwise still sit in the sampler ring and soak up the measured
    // run's first TRR decisions.  A close-driven hook likewise only
    // sees the measured pattern, not the profiling traffic.
    dev.setTrrEnabled(trr_enabled);
    dev.resetTrrSampler();
    if (hook != nullptr)
        dev.setMitigation(hook);

    // Initialize the whole subarray: aggressors with the pattern,
    // everything else as a victim.
    auto is_aggr = [&](RowId p) {
        return std::find(aggressors_phys.begin(), aggressors_phys.end(),
                         p) != aggressors_phys.end();
    };
    for (RowId p = base; p < base + rps; ++p) {
        dev.writeRowDirect(cfg.bank, dev.toLogical(p),
                           is_aggr(p) ? aggr_data : victim_data);
    }

    // Pre-flight: TRR bypass patterns are intricate (per-tREFI phase
    // structure, dummy-row flooding) and easy to get protocol-wrong
    // when the geometry parameters change; refuse to run a program the
    // device would fatal on.  Timing warnings (the model's REF issues
    // faster than tRFC) are expected and not reported here.
    lint::requireClean(program, dev.config(), "runTrrExperiment");

    // Static reachability: a TRR configuration whose hammer budget
    // cannot cross the flip threshold even ignoring TRR's victim
    // refreshes wastes the whole (slow, REF-dense) run.
    {
        const lint::ProgramEffects fx =
            lint::summarizeEffects(program, dev.config());
        const lint::EffectReport rep =
            lint::predictEffects(fx, dev.config());
        if (!rep.anyLikely &&
            rep.hottestCloses >= lint::kHammerIntentCloses) {
            warn("TRR experiment is statically unreachable on %s: "
                 "best-case predicted damage is %.3g of the flip "
                 "threshold before TRR even intervenes",
                 dev.config().profile.moduleId.c_str(),
                 rep.victims.empty()
                     ? 0.0
                     : rep.victims.front().optimisticDamage);
        }
    }

    tester.bench().run(program);

    std::uint64_t flips = 0;
    for (RowId p = base; p < base + rps; ++p) {
        if (is_aggr(p))
            continue;
        flips += tester.bench().countBitflips(
            cfg.bank, dev.toLogical(p), victim_data);
    }
    dev.setTrrEnabled(false);
    if (hook != nullptr)
        dev.setMitigation(nullptr);
    return flips;
}

} // namespace pud::hammer
