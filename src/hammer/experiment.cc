#include "hammer/experiment.h"

#include <algorithm>
#include <limits>

#include "lint/linter.h"
#include "util/logging.h"

namespace pud::hammer {

std::vector<std::vector<double>>
measurePopulation(const PopulationConfig &cfg,
                  const std::vector<MeasureFn> &measures)
{
    std::vector<std::vector<double>> series(measures.size());

    for (int m = 0; m < cfg.modules; ++m) {
        dram::DeviceConfig dev_cfg =
            dram::makeConfig(cfg.moduleId, cfg.seed + m);
        if (cfg.rowsPerSubarray)
            dev_cfg.rowsPerSubarray = cfg.rowsPerSubarray;
        ModuleTester tester(dev_cfg);

        const auto victims =
            tester.sampleVictims(cfg.victimsPerSubarray, cfg.oddOnly);
        for (RowId v : victims) {
            for (std::size_t i = 0; i < measures.size(); ++i) {
                const std::uint64_t hc = measures[i](tester, v);
                series[i].push_back(
                    hc == kNoFlip
                        ? std::numeric_limits<double>::quiet_NaN()
                        : static_cast<double>(hc));
            }
        }
    }
    return series;
}

std::vector<std::vector<double>>
dropIncomplete(const std::vector<std::vector<double>> &series)
{
    if (series.empty())
        return {};
    const std::size_t n = series.front().size();
    for (const auto &s : series)
        if (s.size() != n)
            panic("dropIncomplete: ragged series");

    std::vector<std::vector<double>> out(series.size());
    for (std::size_t i = 0; i < n; ++i) {
        bool ok = true;
        for (const auto &s : series)
            if (std::isnan(s[i]))
                ok = false;
        if (!ok)
            continue;
        for (std::size_t k = 0; k < series.size(); ++k)
            out[k].push_back(series[k][i]);
    }
    return out;
}

std::uint64_t
runTrrExperiment(ModuleTester &tester, TrrTechnique tech,
                 const TrrConfig &cfg, bool trr_enabled)
{
    dram::Device &dev = tester.device();
    const ColId cols = dev.config().cols;
    const RowId rps = dev.config().rowsPerSubarray;
    const dram::SubarrayId sub = dev.config().subarraysPerBank / 2;
    const RowId base = sub * rps;

    dev.setTrrEnabled(trr_enabled);

    // SiMRA is most effective with 1 -> 0 flips (Obs. 14): an all-ones
    // victim (all-zeros aggressor) pattern.  RowHammer and CoMRA use
    // the checkerboard WCDP.
    const DataPattern aggr_pattern = tech == TrrTechnique::Simra
                                         ? DataPattern::P00
                                         : DataPattern::P55;
    const RowData aggr_data(cols, aggr_pattern);
    const RowData victim_data(cols, dram::negate(aggr_pattern));

    PatternTimings t;

    // Aggressor geometry in the middle of the subarray.
    std::vector<RowId> aggressors_phys;
    Program program;
    const RowId mid = base + rps / 2;

    switch (tech) {
      case TrrTechnique::RowHammer:
      case TrrTechnique::Comra: {
        // Like the U-TRR methodology, profile candidate victims first
        // and aim the N-sided pattern at the most vulnerable one.
        RowId best_victim = mid + 1;
        std::uint64_t best_hc = ~std::uint64_t(0);
        ModuleTester::Options profile_opt;
        profile_opt.pattern = aggr_pattern;
        for (RowId v = base + 5; v + 8 + 2 * cfg.nSided < base + rps;
             v += 4) {
            const std::uint64_t hc = tester.rhDouble(v, profile_opt);
            if (hc < best_hc) {
                best_hc = hc;
                best_victim = v;
            }
        }

        // N aggressors spaced by 2, sandwiching odd victims; for CoMRA
        // they are walked as (src, dst) pairs.
        int n = cfg.nSided;
        if (tech == TrrTechnique::Comra && n % 2)
            ++n;
        for (int i = 0; i < n; ++i)
            aggressors_phys.push_back(best_victim - 1 +
                                      2 * static_cast<RowId>(i));
        std::vector<RowId> aggressors_logical;
        for (RowId a : aggressors_phys)
            aggressors_logical.push_back(dev.toLogical(a));
        const RowId dummy = dev.toLogical(base + 4);
        const std::uint64_t acts_per_cycle =
            static_cast<std::uint64_t>(cfg.actsPerTrefi) /
            aggressors_phys.size();
        const std::uint64_t cycles = std::max<std::uint64_t>(
            1, cfg.hammersPerAggressor / std::max<std::uint64_t>(
                                             1, acts_per_cycle));
        program = trrBypassPattern(cfg.bank, aggressors_logical, dummy,
                                   tech == TrrTechnique::Comra, cycles,
                                   t, cfg.actsPerTrefi);
        break;
      }
      case TrrTechnique::Simra: {
        // A spaced (bit-combination) group leaves its sandwiched
        // victims invisible to the TRR sampler, which only observes
        // the two issued ACT addresses (Obs. 26).  32-row activation
        // only resolves as a contiguous block in the modeled decoder
        // (paper footnote 3), so it falls back to edge victims.
        std::optional<SimraPlan> plan;
        if (cfg.simraN <= 16) {
            const RowId victim = (mid & ~RowId(3)) | 1;
            plan = tester.planSimraDouble(victim, cfg.simraN);
        } else {
            plan = tester.planSimraSingle(
                ((mid / cfg.simraN) * cfg.simraN) - 1, cfg.simraN);
        }
        if (!plan)
            fatal("runTrrExperiment: no SiMRA-%d group near row %u",
                  cfg.simraN, mid);
        aggressors_phys = plan->group;
        const std::uint64_t ops_per_cycle =
            static_cast<std::uint64_t>(cfg.actsPerTrefi) / 2;
        const std::uint64_t cycles = std::max<std::uint64_t>(
            1, cfg.hammersPerAggressor / ops_per_cycle);
        program = trrSimraPattern(cfg.bank, dev.toLogical(plan->r1),
                                  dev.toLogical(plan->r2), cycles, t,
                                  cfg.actsPerTrefi);
        break;
      }
    }

    // Initialize the whole subarray: aggressors with the pattern,
    // everything else as a victim.
    auto is_aggr = [&](RowId p) {
        return std::find(aggressors_phys.begin(), aggressors_phys.end(),
                         p) != aggressors_phys.end();
    };
    for (RowId p = base; p < base + rps; ++p) {
        dev.writeRowDirect(cfg.bank, dev.toLogical(p),
                           is_aggr(p) ? aggr_data : victim_data);
    }

    // Pre-flight: TRR bypass patterns are intricate (per-tREFI phase
    // structure, dummy-row flooding) and easy to get protocol-wrong
    // when the geometry parameters change; refuse to run a program the
    // device would fatal on.  Timing warnings (the model's REF issues
    // faster than tRFC) are expected and not reported here.
    lint::requireClean(program, dev.config(), "runTrrExperiment");

    tester.bench().run(program);

    std::uint64_t flips = 0;
    for (RowId p = base; p < base + rps; ++p) {
        if (is_aggr(p))
            continue;
        flips += tester.bench().countBitflips(
            cfg.bank, dev.toLogical(p), victim_data);
    }
    dev.setTrrEnabled(false);
    return flips;
}

} // namespace pud::hammer
