/**
 * @file
 * Fleet-scale population sweeps: streaming sketches + checkpoint /
 * resume.
 *
 * measurePopulation (experiment.h) returns whole-population sample
 * vectors -- O(modules * victims) memory -- and loses everything if
 * the process dies mid-run.  sweepPopulation is its fleet-scale
 * sibling: each shard reduces its measurements into per-measure
 * SampleSketches, completed shards are appended to a checkpoint file
 * in canonical shard order, and a resumed run folds the recorded
 * prefix back in and computes only the remainder.
 *
 * Determinism contract: the fleet sketch is the shard sketches merged
 * in *shard index order* (never completion order), and every shard's
 * sketch depends only on its own identically-seeded tester.  The
 * result is therefore bit-identical across `--jobs` values and across
 * any interrupt/resume split -- floating-point summation order is
 * fully pinned even though it is not associative.
 */

#ifndef PUD_HAMMER_POPULATION_H
#define PUD_HAMMER_POPULATION_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hammer/experiment.h"
#include "stats/sketch.h"

namespace pud::hammer {

/** Knobs of one sweepPopulation call beyond the PopulationConfig. */
struct SweepOptions
{
    /**
     * Checkpoint file; empty disables checkpointing.  An existing file
     * must carry the same configuration fingerprint (mismatch is
     * fatal: silently mixing populations would corrupt the fleet
     * statistics).  Completed shard records are committed to the file
     * as the sweep runs -- every commit is write-temp + fsync + rename,
     * so the file on disk is always a *complete* canonical prefix and a
     * crashed process (power loss included) never re-reads its own torn
     * write.  An interrupted run loses at most the shards still in
     * flight plus the commit batch being accumulated.
     */
    std::string checkpointPath;

    /** Relative quantile error bound of the per-measure sketches. */
    double sketchAlpha = 0.01;

    /**
     * Global shard range [shardBegin, min(shardEnd, totalShards)) this
     * call computes; the default covers the whole plan.  Multi-process
     * drivers (hammer/popsweep.h) give each worker a contiguous range
     * and its own checkpoint file; record indices in the file stay
     * *global*, so the supervisor can merge worker files in canonical
     * shard order without any renumbering.
     */
    std::size_t shardBegin = 0;
    std::size_t shardEnd = static_cast<std::size_t>(-1);
};

/** One completed shard as stored in (and restored from) a checkpoint. */
struct ShardRecord
{
    ShardReport report;
    std::vector<stats::SampleSketch> sketches;  //!< one per measure
};

/**
 * Cheap structural scan of a checkpoint file: header fields plus the
 * number of complete records, without deserializing sketch payloads
 * into full sketches for the caller.  `torn` reports trailing bytes
 * after the last complete record -- with atomic commits this indicates
 * outside interference (truncation, concurrent writers), not a crash,
 * and the supervisor surfaces it.  `valid` is false when the file is
 * missing or the header does not parse.
 */
struct CheckpointScan
{
    bool valid = false;
    std::uint64_t fingerprint = 0;
    std::size_t measures = 0;
    std::size_t shards = 0;  //!< total planned shards (header)
    std::size_t base = 0;    //!< first global shard index (header)
    std::size_t records = 0; //!< complete records present
    bool torn = false;
};

CheckpointScan scanCheckpoint(const std::string &path);

/**
 * Atomically replace `path` with `contents`: write `path + ".tmp"`,
 * fsync, rename over the destination (POSIX rename is atomic), then
 * best-effort fsync the containing directory.  Readers only ever see
 * the old or the new complete file.  Shared by the checkpoint writer
 * and the popsweep sidecar files.
 */
void atomicWriteFile(const std::string &path,
                     const std::string &contents);

/**
 * Load the valid canonical prefix of a checkpoint: records for global
 * shard indices [base, base + result.size()), in order.  Fatal when
 * the file exists but was written by a different sweep configuration;
 * an absent or empty file yields an empty vector.  Exposed so the
 * popsweep supervisor can fold completed worker files into the fleet
 * merge without rerunning any work.
 */
std::vector<std::pair<std::size_t, ShardRecord>>
loadCheckpointRecords(const std::string &path, std::uint64_t fingerprint,
                      std::size_t measures, std::size_t total_shards);

/** What one sweepPopulation call produced. */
struct SweepResult
{
    /**
     * One fleet sketch per MeasureFn.  kNoFlip measurements enter as
     * NaN and are therefore counted in dropped(), mirroring the NaN
     * convention of measurePopulation.
     */
    std::vector<stats::SampleSketch> sketches;

    PopulationTelemetry telemetry;

    /** Shards restored from the checkpoint instead of computed. */
    std::size_t resumedShards = 0;

    /** Total planned shards (resumed + computed). */
    std::size_t totalShards = 0;
};

/**
 * Stable hash of everything that determines the sweep's work: module
 * family, population size, victim sampling, seeds, sharding, and the
 * measure count.  Guards checkpoint files against being resumed under
 * a different configuration.
 */
std::uint64_t populationFingerprint(const PopulationConfig &cfg,
                                    std::size_t measures);

/**
 * Run `measures` over the whole module population, reducing into
 * streaming sketches shard by shard (memory is O(shards + buckets),
 * never O(victims)).  See SweepOptions for checkpointing.
 */
SweepResult sweepPopulation(const PopulationConfig &cfg,
                            const std::vector<MeasureFn> &measures,
                            const SweepOptions &opt = {});

} // namespace pud::hammer

#endif // PUD_HAMMER_POPULATION_H
