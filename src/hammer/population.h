/**
 * @file
 * Fleet-scale population sweeps: streaming sketches + checkpoint /
 * resume.
 *
 * measurePopulation (experiment.h) returns whole-population sample
 * vectors -- O(modules * victims) memory -- and loses everything if
 * the process dies mid-run.  sweepPopulation is its fleet-scale
 * sibling: each shard reduces its measurements into per-measure
 * SampleSketches, completed shards are appended to a checkpoint file
 * in canonical shard order, and a resumed run folds the recorded
 * prefix back in and computes only the remainder.
 *
 * Determinism contract: the fleet sketch is the shard sketches merged
 * in *shard index order* (never completion order), and every shard's
 * sketch depends only on its own identically-seeded tester.  The
 * result is therefore bit-identical across `--jobs` values and across
 * any interrupt/resume split -- floating-point summation order is
 * fully pinned even though it is not associative.
 */

#ifndef PUD_HAMMER_POPULATION_H
#define PUD_HAMMER_POPULATION_H

#include <cstdint>
#include <string>
#include <vector>

#include "hammer/experiment.h"
#include "stats/sketch.h"

namespace pud::hammer {

/** Knobs of one sweepPopulation call beyond the PopulationConfig. */
struct SweepOptions
{
    /**
     * Checkpoint file; empty disables checkpointing.  An existing file
     * must carry the same configuration fingerprint (mismatch is
     * fatal: silently mixing populations would corrupt the fleet
     * statistics).  Completed shard records are appended and flushed
     * as the sweep runs, so an interrupted process loses at most the
     * shards still in flight.
     */
    std::string checkpointPath;

    /** Relative quantile error bound of the per-measure sketches. */
    double sketchAlpha = 0.01;
};

/** What one sweepPopulation call produced. */
struct SweepResult
{
    /**
     * One fleet sketch per MeasureFn.  kNoFlip measurements enter as
     * NaN and are therefore counted in dropped(), mirroring the NaN
     * convention of measurePopulation.
     */
    std::vector<stats::SampleSketch> sketches;

    PopulationTelemetry telemetry;

    /** Shards restored from the checkpoint instead of computed. */
    std::size_t resumedShards = 0;

    /** Total planned shards (resumed + computed). */
    std::size_t totalShards = 0;
};

/**
 * Stable hash of everything that determines the sweep's work: module
 * family, population size, victim sampling, seeds, sharding, and the
 * measure count.  Guards checkpoint files against being resumed under
 * a different configuration.
 */
std::uint64_t populationFingerprint(const PopulationConfig &cfg,
                                    std::size_t measures);

/**
 * Run `measures` over the whole module population, reducing into
 * streaming sketches shard by shard (memory is O(shards + buckets),
 * never O(victims)).  See SweepOptions for checkpointing.
 */
SweepResult sweepPopulation(const PopulationConfig &cfg,
                            const std::vector<MeasureFn> &measures,
                            const SweepOptions &opt = {});

} // namespace pud::hammer

#endif // PUD_HAMMER_POPULATION_H
