/**
 * @file
 * Population-level experiment runners: instantiate module populations,
 * sweep victims, and run the §7 TRR experiment.  These are the
 * building blocks every bench binary uses.
 */

#ifndef PUD_HAMMER_EXPERIMENT_H
#define PUD_HAMMER_EXPERIMENT_H

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "hammer/tester.h"

namespace pud::hammer {

/** Scale knobs for a module-family population run. */
struct PopulationConfig
{
    std::string moduleId;

    /** Module instances to simulate (Table 2 column #Modules). */
    int modules = 1;

    /** Victims sampled per subarray (the paper tests all rows). */
    RowId victimsPerSubarray = 12;

    /** Restrict to rows sandwichable by double-sided SiMRA groups. */
    bool oddOnly = false;

    std::uint64_t seed = 1;

    /** Geometry override hook (0 = default). */
    RowId rowsPerSubarray = 0;
};

/** HC_first measurement as a function of (tester, victim). */
using MeasureFn =
    std::function<std::uint64_t(ModuleTester &, RowId victim)>;

/**
 * Run several measurements over the same victim population.
 *
 * @return one vector per MeasureFn, aligned per victim; kNoFlip maps
 *         to NaN so downstream stats can filter pairs consistently.
 */
std::vector<std::vector<double>>
measurePopulation(const PopulationConfig &cfg,
                  const std::vector<MeasureFn> &measures);

/** Drop victim entries where any series is NaN; keeps pairing. */
std::vector<std::vector<double>>
dropIncomplete(const std::vector<std::vector<double>> &series);

// ---------------------------------------------------------------------------
// §7: PuDHammer in the presence of in-DRAM TRR
// ---------------------------------------------------------------------------

enum class TrrTechnique
{
    RowHammer,  //!< U-TRR N-sided pattern
    Comra,      //!< same pattern with copy cycles
    Simra,      //!< back-to-back SiMRA ops between REFs
};

inline const char *
name(TrrTechnique t)
{
    switch (t) {
      case TrrTechnique::RowHammer: return "RowHammer";
      case TrrTechnique::Comra:     return "CoMRA";
      case TrrTechnique::Simra:     return "SiMRA";
    }
    return "?";
}

struct TrrConfig
{
    BankId bank = 0;

    /** Aggressor count for the N-sided RowHammer/CoMRA pattern. */
    int nSided = 2;

    /** Simultaneously activated rows for the SiMRA variant. */
    int simraN = 32;

    /** Total hammers per aggressor (paper: 500K). */
    std::uint64_t hammersPerAggressor = 60000;

    /** ACT budget per tREFI in the tested module (paper: 156). */
    int actsPerTrefi = 156;
};

/**
 * Run one TRR experiment iteration: build the aggressor geometry in
 * the middle subarray, initialize victims, run the paced pattern with
 * periodic REF, and count bitflips across every non-aggressor row of
 * the subarray.
 */
std::uint64_t runTrrExperiment(ModuleTester &tester, TrrTechnique tech,
                               const TrrConfig &cfg, bool trr_enabled);

} // namespace pud::hammer

#endif // PUD_HAMMER_EXPERIMENT_H
