/**
 * @file
 * Population-level experiment runners: instantiate module populations,
 * sweep victims, and run the §7 TRR experiment.  These are the
 * building blocks every bench binary uses.
 */

#ifndef PUD_HAMMER_EXPERIMENT_H
#define PUD_HAMMER_EXPERIMENT_H

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "hammer/tester.h"

namespace pud::hammer {

/** Scale knobs for a module-family population run. */
struct PopulationConfig
{
    std::string moduleId;

    /** Module instances to simulate (Table 2 column #Modules). */
    int modules = 1;

    /** Victims sampled per subarray (the paper tests all rows). */
    RowId victimsPerSubarray = 12;

    /** Restrict to rows sandwichable by double-sided SiMRA groups. */
    bool oddOnly = false;

    std::uint64_t seed = 1;

    /** Geometry override hook (0 = default). */
    RowId rowsPerSubarray = 0;

    // ---- parallel execution (pud::exec) ------------------------------

    /**
     * Worker threads for the population sweep; 1 is the legacy serial
     * path (no threads created), <= 0 means hardware concurrency.
     * Results are bit-identical for every value: work is sharded at
     * module granularity (each shard owns its ModuleTester, exactly
     * the serial per-module loop body) and every measurement is
     * written into a pre-sized slot keyed by (module, victim,
     * measure), so scheduling never affects output.
     */
    int jobs = 1;

    /**
     * Opt-in finer sharding: split each module's victim list into
     * chunks of `victimChunk` and give every chunk a *fresh*
     * identically-seeded tester.  Chunk boundaries depend only on
     * `victimChunk`, never on `jobs`, so output is still bit-identical
     * across jobs values -- but chunked results can differ from
     * module-granularity results because each chunk starts from a
     * pristine device instead of inheriting intra-module history.
     */
    bool perVictimChunks = false;

    /** Victims per chunk when perVictimChunks is set. */
    RowId victimChunk = 8;

    /** Optional per-tester setup (e.g. temperature), run per shard. */
    std::function<void(ModuleTester &)> setup;
};

/** Wall-time and size of one parallel shard, for bench telemetry. */
struct ShardReport
{
    int module = 0;             //!< module instance index
    std::size_t firstSlot = 0;  //!< global victim slot of first unit
    std::size_t victims = 0;    //!< victims measured by this shard
    std::size_t workUnits = 0;  //!< victims * measures
    double seconds = 0.0;       //!< shard wall time

    /** ACT commands issued by the shard's device (hammers/sec base). */
    std::uint64_t acts = 0;

    /**
     * Rows whose weak-cell population the shard's device materialized.
     * The lazy-row RSS argument at fleet scale rests on this staying a
     * small constant per module; benches report the fleet maximum.
     */
    std::size_t populatedRows = 0;

    // Executor counters accumulated by the shard's tester
    // (bender::ExecStats): how much of the work took the loop
    // fast-path and how often probe programs reused a compiled plan.
    std::uint64_t fastPathIterations = 0;
    std::uint64_t planCacheHits = 0;
    std::uint64_t planCacheMisses = 0;
};

// ---- sweep planning (pure; shared by runner, benches, and tests) -----

/**
 * One planned parallel work unit: a module instance, or a victim chunk
 * of one.  Shards are ordered by (module, victimBegin), which is also
 * slot order -- planPopulationShards guarantees `slotBase` increases
 * monotonically over the returned vector, so shard index, report
 * index, and result-slot ranges all agree regardless of how shards are
 * later scheduled across jobs.
 */
struct ShardPlan
{
    int module = 0;
    std::size_t victimBegin = 0;  //!< index into the module victim list
    std::size_t victimEnd = 0;
    std::size_t slotBase = 0;     //!< global slot of victimBegin
};

/** The per-module DeviceConfig a sweep builds for `module`. */
dram::DeviceConfig populationDeviceConfig(const PopulationConfig &cfg,
                                          int module);

/**
 * The victim list of *every* module instance in the population: victim
 * sampling is geometry-only (hammer/enumerate.h) and the geometry is
 * shared by all instances, so one enumeration covers the whole fleet.
 * Global slot order is (module, victim, measure), i.e. module m's
 * victim v occupies slot m * victims.size() + v.
 */
std::vector<RowId> populationVictims(const PopulationConfig &cfg);

/**
 * Shard the sweep: one shard per module, or fixed-size victim chunks
 * when `cfg.perVictimChunks` is set (chunk boundaries depend only on
 * `victimChunk`, never on `jobs`).  A module with no victims still
 * gets one empty shard so telemetry reports every instance.
 * `victims_per_module` is populationVictims(cfg).size().
 */
std::vector<ShardPlan>
planPopulationShards(const PopulationConfig &cfg,
                     std::size_t victims_per_module);

/** What one measurePopulation call did, shard by shard. */
struct PopulationTelemetry
{
    int jobs = 1;
    bool perVictimChunks = false;
    double wallSeconds = 0.0;
    std::vector<ShardReport> shards;

    std::size_t
    workUnits() const
    {
        std::size_t n = 0;
        for (const ShardReport &s : shards)
            n += s.workUnits;
        return n;
    }

    /** Summed per-shard busy time (serial-equivalent wall time). */
    double
    busySeconds() const
    {
        double t = 0.0;
        for (const ShardReport &s : shards)
            t += s.seconds;
        return t;
    }

    /** Total ACT commands issued across all shards. */
    std::uint64_t
    acts() const
    {
        std::uint64_t n = 0;
        for (const ShardReport &s : shards)
            n += s.acts;
        return n;
    }

    /** Loop iterations replayed arithmetically instead of executed. */
    std::uint64_t
    fastPathIterations() const
    {
        std::uint64_t n = 0;
        for (const ShardReport &s : shards)
            n += s.fastPathIterations;
        return n;
    }

    /** Program runs that reused a cached ExecPlan. */
    std::uint64_t
    planCacheHits() const
    {
        std::uint64_t n = 0;
        for (const ShardReport &s : shards)
            n += s.planCacheHits;
        return n;
    }

    std::uint64_t
    planCacheMisses() const
    {
        std::uint64_t n = 0;
        for (const ShardReport &s : shards)
            n += s.planCacheMisses;
        return n;
    }

    /** Largest per-shard materialized-row count (RSS sublinearity). */
    std::size_t
    maxPopulatedRows() const
    {
        std::size_t n = 0;
        for (const ShardReport &s : shards)
            n = std::max(n, s.populatedRows);
        return n;
    }
};

/** HC_first measurement as a function of (tester, victim). */
using MeasureFn =
    std::function<std::uint64_t(ModuleTester &, RowId victim)>;

/**
 * Run several measurements over the same victim population.
 *
 * With `cfg.jobs > 1` the (module, victim, measure) work units run in
 * parallel on a pud::exec pool; the output is guaranteed bit-identical
 * to the serial path (see PopulationConfig::jobs).
 *
 * @param telemetry optional out-param receiving per-shard wall time
 *                  and work-unit counts
 * @return one vector per MeasureFn, aligned per victim; kNoFlip maps
 *         to NaN so downstream stats can filter pairs consistently.
 */
std::vector<std::vector<double>>
measurePopulation(const PopulationConfig &cfg,
                  const std::vector<MeasureFn> &measures,
                  PopulationTelemetry *telemetry = nullptr);

/** Drop victim entries where any series is NaN; keeps pairing. */
std::vector<std::vector<double>>
dropIncomplete(const std::vector<std::vector<double>> &series);

// ---------------------------------------------------------------------------
// §7: PuDHammer in the presence of in-DRAM TRR
// ---------------------------------------------------------------------------

enum class TrrTechnique
{
    RowHammer,  //!< U-TRR N-sided pattern
    Comra,      //!< same pattern with copy cycles
    Simra,      //!< back-to-back SiMRA ops between REFs
};

inline const char *
name(TrrTechnique t)
{
    switch (t) {
      case TrrTechnique::RowHammer: return "RowHammer";
      case TrrTechnique::Comra:     return "CoMRA";
      case TrrTechnique::Simra:     return "SiMRA";
    }
    return "?";
}

struct TrrConfig
{
    BankId bank = 0;

    /** Aggressor count for the N-sided RowHammer/CoMRA pattern. */
    int nSided = 2;

    /** Simultaneously activated rows for the SiMRA variant. */
    int simraN = 32;

    /** Total hammers per aggressor (paper: 500K). */
    std::uint64_t hammersPerAggressor = 60000;

    /** ACT budget per tREFI in the tested module (paper: 156). */
    int actsPerTrefi = 156;
};

/**
 * Run one TRR experiment iteration: build the aggressor geometry in
 * the middle subarray, initialize victims, run the paced pattern with
 * periodic REF, and count bitflips across every non-aggressor row of
 * the subarray.
 *
 * `hook`, when non-null, is attached as the device's close-driven
 * mitigation (dram::Device::setMitigation) for the measured run only
 * -- profiling always observes the intrinsic chip -- and detached
 * before returning.  This lets the same harness measure PARA /
 * Graphene / PRAC instead of (or on top of) the REF-driven native TRR
 * sampler: pass trr_enabled = false with a hook for a pure
 * alternative-mitigation arm.
 */
std::uint64_t runTrrExperiment(ModuleTester &tester, TrrTechnique tech,
                               const TrrConfig &cfg, bool trr_enabled,
                               dram::MitigationHook *hook = nullptr);

} // namespace pud::hammer

#endif // PUD_HAMMER_EXPERIMENT_H
