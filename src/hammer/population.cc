#include "hammer/population.h"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <string>

#include "exec/pool.h"
#include "hammer/hcfirst.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"

namespace pud::hammer {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** One completed shard as stored in (and restored from) a checkpoint. */
struct ShardRecord
{
    ShardReport report;
    std::vector<stats::SampleSketch> sketches;  //!< one per measure
};

std::string
encodeRecord(std::size_t index, const ShardRecord &rec)
{
    std::string out = "shard=" + std::to_string(index);
    out += " module=" + std::to_string(rec.report.module);
    out += " victims=" + std::to_string(rec.report.victims);
    out += " units=" + std::to_string(rec.report.workUnits);
    out += " seconds=" + stats::hexDouble(rec.report.seconds);
    out += " acts=" + std::to_string(rec.report.acts);
    out += " fast=" + std::to_string(rec.report.fastPathIterations);
    out += " hits=" + std::to_string(rec.report.planCacheHits);
    out += " misses=" + std::to_string(rec.report.planCacheMisses);
    out += '\n';
    for (const stats::SampleSketch &sk : rec.sketches) {
        out += "sk ";
        out += sk.serialize();
        out += '\n';
    }
    return out;
}

/** Parse "key=value" with an integral value; false on mismatch. */
template <typename T>
bool
kvInt(std::istream &line, const char *key, T *out)
{
    std::string tok;
    if (!(line >> tok))
        return false;
    const std::string prefix = std::string(key) + "=";
    if (tok.rfind(prefix, 0) != 0)
        return false;
    const char *first = tok.data() + prefix.size();
    const char *last = tok.data() + tok.size();
    const auto [ptr, ec] = std::from_chars(first, last, *out);
    return ec == std::errc() && ptr == last;
}

/**
 * Load the canonical-order prefix of completed shards.  Stops (without
 * failing) at the first truncated or malformed record: a crash while
 * appending leaves at most one partial record at the tail, and every
 * complete record before it is still valid.
 */
std::map<std::size_t, ShardRecord>
loadCheckpoint(const std::string &path, std::uint64_t fingerprint,
               std::size_t measures, std::size_t total_shards)
{
    std::map<std::size_t, ShardRecord> loaded;
    std::ifstream in(path);
    if (!in)
        return loaded;

    std::string line;
    if (!std::getline(in, line))
        return loaded;
    {
        std::istringstream header(line);
        std::string magic;
        std::uint64_t fp = 0;
        std::size_t m = 0;
        if (!(header >> magic) || magic != "popckpt1" ||
            !kvInt(header, "fp", &fp) ||
            !kvInt(header, "measures", &m)) {
            fatal("checkpoint %s: unrecognized header", path.c_str());
        }
        if (fp != fingerprint || m != measures) {
            fatal("checkpoint %s was written by a different sweep "
                  "configuration (fingerprint %016llx vs %016llx); "
                  "refusing to resume",
                  path.c_str(), static_cast<unsigned long long>(fp),
                  static_cast<unsigned long long>(fingerprint));
        }
    }

    std::size_t expect = 0;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        ShardRecord rec;
        std::size_t index = 0;
        if (!kvInt(ls, "shard", &index) || index != expect ||
            index >= total_shards ||
            !kvInt(ls, "module", &rec.report.module) ||
            !kvInt(ls, "victims", &rec.report.victims) ||
            !kvInt(ls, "units", &rec.report.workUnits))
            break;
        {
            std::string tok;
            if (!(ls >> tok) || tok.rfind("seconds=", 0) != 0 ||
                !stats::parseHexDouble(tok.substr(8),
                                       &rec.report.seconds))
                break;
        }
        if (!kvInt(ls, "acts", &rec.report.acts) ||
            !kvInt(ls, "fast", &rec.report.fastPathIterations) ||
            !kvInt(ls, "hits", &rec.report.planCacheHits) ||
            !kvInt(ls, "misses", &rec.report.planCacheMisses))
            break;

        bool ok = true;
        rec.sketches.reserve(measures);
        for (std::size_t i = 0; i < measures; ++i) {
            if (!std::getline(in, line) || line.rfind("sk ", 0) != 0) {
                ok = false;
                break;
            }
            auto sk = stats::SampleSketch::deserialize(
                std::string_view(line).substr(3));
            if (!sk) {
                ok = false;
                break;
            }
            rec.sketches.push_back(std::move(*sk));
        }
        if (!ok)
            break;
        loaded.emplace(index, std::move(rec));
        ++expect;
    }
    return loaded;
}

} // namespace

std::uint64_t
populationFingerprint(const PopulationConfig &cfg, std::size_t measures)
{
    std::uint64_t h = 0x506F7043 ^ 0x6B707431;  // "PopC" ^ "kpt1"
    for (char c : cfg.moduleId)
        h = Rng::mix64(h ^ static_cast<unsigned char>(c));
    h = Rng::mix64(h ^ static_cast<std::uint64_t>(cfg.modules));
    h = Rng::mix64(h ^ cfg.victimsPerSubarray);
    h = Rng::mix64(h ^ (cfg.oddOnly ? 1 : 0));
    h = Rng::mix64(h ^ cfg.seed);
    h = Rng::mix64(h ^ cfg.rowsPerSubarray);
    h = Rng::mix64(h ^ (cfg.perVictimChunks ? 1 : 0));
    h = Rng::mix64(h ^ cfg.victimChunk);
    h = Rng::mix64(h ^ static_cast<std::uint64_t>(measures));
    return h;
}

SweepResult
sweepPopulation(const PopulationConfig &cfg,
                const std::vector<MeasureFn> &measures,
                const SweepOptions &opt)
{
    const auto wall_start = std::chrono::steady_clock::now();
    const int jobs = exec::resolveJobs(cfg.jobs);
    const std::uint64_t fingerprint =
        populationFingerprint(cfg, measures.size());

    const std::vector<RowId> victims = populationVictims(cfg);
    const std::vector<ShardPlan> shards =
        planPopulationShards(cfg, victims.size());

    std::vector<ShardRecord> records(shards.size());
    std::vector<bool> resumed(shards.size(), false);

    // ---- resume -------------------------------------------------------
    std::size_t resumed_count = 0;
    if (!opt.checkpointPath.empty()) {
        auto loaded =
            loadCheckpoint(opt.checkpointPath, fingerprint,
                           measures.size(), shards.size());
        for (auto &[index, rec] : loaded) {
            records[index] = std::move(rec);
            records[index].report.firstSlot = shards[index].slotBase;
            resumed[index] = true;
            ++resumed_count;
        }
    }

    // ---- checkpoint writer (canonical-order streaming append) ---------
    //
    // Shards complete in scheduler order, but the file must always be
    // a prefix of the canonical shard sequence (that is what makes a
    // resumed merge bit-identical).  Completed records park in `ready`
    // until every lower-index shard has been appended.
    std::ofstream ckpt;
    std::mutex ckpt_mutex;
    std::map<std::size_t, std::string> ready;
    std::size_t next_to_append = resumed_count;
    if (!opt.checkpointPath.empty()) {
        // Rewrite the validated prefix rather than appending after
        // whatever the old file ends with: a crash mid-append can
        // leave a partial record at the tail, and appending past it
        // would corrupt every later resume.
        ckpt.open(opt.checkpointPath, std::ios::trunc);
        if (!ckpt)
            fatal("cannot open checkpoint file %s",
                  opt.checkpointPath.c_str());
        ckpt << "popckpt1 fp=" << fingerprint
             << " measures=" << measures.size()
             << " shards=" << shards.size() << '\n';
        for (std::size_t i = 0; i < resumed_count; ++i)
            ckpt << encodeRecord(i, records[i]);
        ckpt.flush();
    }
    auto offerRecord = [&](std::size_t index) {
        if (!ckpt.is_open())
            return;
        std::lock_guard<std::mutex> lock(ckpt_mutex);
        ready.emplace(index, encodeRecord(index, records[index]));
        while (!ready.empty() &&
               ready.begin()->first == next_to_append) {
            ckpt << ready.begin()->second;
            ready.erase(ready.begin());
            ++next_to_append;
            ckpt.flush();
        }
    };

    if (obs::traceOn()) [[unlikely]]
        obs::trace().event(
            "sweep_start",
            {{"module_id", cfg.moduleId},
             {"modules", static_cast<std::int64_t>(cfg.modules)},
             {"victims", victims.size() *
                             static_cast<std::size_t>(
                                 std::max(0, cfg.modules))},
             {"measures", measures.size()},
             {"shards", shards.size()},
             {"resumed", resumed_count},
             {"jobs", static_cast<std::int64_t>(jobs)}});

    // ---- sweep --------------------------------------------------------
    exec::parallelFor(jobs, shards.size(), [&](std::size_t si) {
        if (resumed[si])
            return;
        const ShardPlan &shard = shards[si];
        const auto shard_start = std::chrono::steady_clock::now();

        ModuleTester tester(populationDeviceConfig(cfg, shard.module));
        if (cfg.setup)
            cfg.setup(tester);

        ShardRecord &rec = records[si];
        rec.sketches.assign(measures.size(),
                            stats::SampleSketch(opt.sketchAlpha));
        for (std::size_t v = shard.victimBegin; v < shard.victimEnd;
             ++v) {
            for (std::size_t i = 0; i < measures.size(); ++i) {
                const std::uint64_t hc =
                    measures[i](tester, victims[v]);
                rec.sketches[i].add(
                    hc == kNoFlip
                        ? std::numeric_limits<double>::quiet_NaN()
                        : static_cast<double>(hc));
            }
        }

        ShardReport &r = rec.report;
        r.module = shard.module;
        r.firstSlot = shard.slotBase;
        r.victims = shard.victimEnd - shard.victimBegin;
        r.workUnits = r.victims * measures.size();
        r.seconds = secondsSince(shard_start);
        r.acts = tester.device().counters().acts;
        const bender::ExecStats &xs = tester.bench().executor().stats();
        r.fastPathIterations = xs.fastPathIterations;
        r.planCacheHits = xs.planCacheHits;
        r.planCacheMisses = xs.planCacheMisses;
        offerRecord(si);
    });

    // ---- canonical-order fleet merge ----------------------------------
    SweepResult result;
    result.sketches.assign(measures.size(),
                           stats::SampleSketch(opt.sketchAlpha));
    for (const ShardRecord &rec : records) {
        if (rec.sketches.size() != measures.size())
            fatal("sweepPopulation: shard record with %zu sketches, "
                  "expected %zu",
                  rec.sketches.size(), measures.size());
        for (std::size_t i = 0; i < measures.size(); ++i)
            result.sketches[i].merge(rec.sketches[i]);
    }

    result.telemetry.jobs = jobs;
    result.telemetry.perVictimChunks = cfg.perVictimChunks;
    result.telemetry.wallSeconds = secondsSince(wall_start);
    result.telemetry.shards.reserve(records.size());
    for (const ShardRecord &rec : records)
        result.telemetry.shards.push_back(rec.report);
    result.resumedShards = resumed_count;
    result.totalShards = shards.size();

    if (obs::traceOn()) [[unlikely]]
        obs::trace().event(
            "sweep_end",
            {{"wall_s", result.telemetry.wallSeconds},
             {"units", result.telemetry.workUnits()},
             {"shards", records.size()},
             {"resumed", resumed_count}});
    return result;
}

} // namespace pud::hammer
