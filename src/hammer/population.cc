#include "hammer/population.h"

#include <fcntl.h>
#include <unistd.h>

#include <charconv>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

#include "exec/pool.h"
#include "hammer/hcfirst.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"

namespace pud::hammer {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
encodeRecord(std::size_t index, const ShardRecord &rec)
{
    std::string out = "shard=" + std::to_string(index);
    out += " module=" + std::to_string(rec.report.module);
    out += " victims=" + std::to_string(rec.report.victims);
    out += " units=" + std::to_string(rec.report.workUnits);
    out += " seconds=" + stats::hexDouble(rec.report.seconds);
    out += " acts=" + std::to_string(rec.report.acts);
    out += " populated=" + std::to_string(rec.report.populatedRows);
    out += " fast=" + std::to_string(rec.report.fastPathIterations);
    out += " hits=" + std::to_string(rec.report.planCacheHits);
    out += " misses=" + std::to_string(rec.report.planCacheMisses);
    out += '\n';
    for (const stats::SampleSketch &sk : rec.sketches) {
        out += "sk ";
        out += sk.serialize();
        out += '\n';
    }
    return out;
}

/** Parse "key=value" with an integral value; false on mismatch. */
template <typename T>
bool
kvInt(std::istream &line, const char *key, T *out)
{
    std::string tok;
    if (!(line >> tok))
        return false;
    const std::string prefix = std::string(key) + "=";
    if (tok.rfind(prefix, 0) != 0)
        return false;
    const char *first = tok.data() + prefix.size();
    const char *last = tok.data() + tok.size();
    const auto [ptr, ec] = std::from_chars(first, last, *out);
    return ec == std::errc() && ptr == last;
}

struct CheckpointHeader
{
    std::uint64_t fingerprint = 0;
    std::size_t measures = 0;
    std::size_t shards = 0;
    std::size_t base = 0;
};

bool
parseHeader(const std::string &line, CheckpointHeader *h)
{
    std::istringstream header(line);
    std::string magic;
    return (header >> magic) && magic == "popckpt1" &&
           kvInt(header, "fp", &h->fingerprint) &&
           kvInt(header, "measures", &h->measures) &&
           kvInt(header, "shards", &h->shards) &&
           kvInt(header, "base", &h->base);
}

/**
 * Parse one record whose first line is already in `line` (the sk
 * payload lines are consumed from `in`).  False on any mismatch; the
 * stream may then be mid-record, which callers treat as the end of
 * the valid prefix.
 */
bool
parseRecord(std::istream &in, std::string &line, std::size_t expect,
            std::size_t total_shards, std::size_t measures,
            ShardRecord *rec)
{
    std::istringstream ls(line);
    std::size_t index = 0;
    if (!kvInt(ls, "shard", &index) || index != expect ||
        index >= total_shards ||
        !kvInt(ls, "module", &rec->report.module) ||
        !kvInt(ls, "victims", &rec->report.victims) ||
        !kvInt(ls, "units", &rec->report.workUnits))
        return false;
    {
        std::string tok;
        if (!(ls >> tok) || tok.rfind("seconds=", 0) != 0 ||
            !stats::parseHexDouble(tok.substr(8), &rec->report.seconds))
            return false;
    }
    if (!kvInt(ls, "acts", &rec->report.acts) ||
        !kvInt(ls, "populated", &rec->report.populatedRows) ||
        !kvInt(ls, "fast", &rec->report.fastPathIterations) ||
        !kvInt(ls, "hits", &rec->report.planCacheHits) ||
        !kvInt(ls, "misses", &rec->report.planCacheMisses))
        return false;

    rec->sketches.reserve(measures);
    for (std::size_t i = 0; i < measures; ++i) {
        if (!std::getline(in, line) || line.rfind("sk ", 0) != 0)
            return false;
        auto sk = stats::SampleSketch::deserialize(
            std::string_view(line).substr(3));
        if (!sk)
            return false;
        rec->sketches.push_back(std::move(*sk));
    }
    return true;
}

} // namespace

void
atomicWriteFile(const std::string &path, const std::string &contents)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        fatal("cannot open checkpoint temp file %s", tmp.c_str());
    const char *p = contents.data();
    std::size_t left = contents.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            ::close(fd);
            fatal("short write to checkpoint temp file %s",
                  tmp.c_str());
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        fatal("fsync failed on checkpoint temp file %s", tmp.c_str());
    }
    ::close(fd);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename %s over %s", tmp.c_str(), path.c_str());

    const auto slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY);
    if (dfd >= 0) {
        ::fsync(dfd);  // durability of the rename itself; best effort
        ::close(dfd);
    }
}

namespace {

/**
 * Canonical-order streaming checkpoint writer.
 *
 * Shards complete in scheduler order, but the file must always be a
 * complete canonical prefix (that is what makes a resumed merge
 * bit-identical), so completed records park until every lower-index
 * shard has been handed in.  Commits go through atomicReplace: the
 * on-disk file is rewritten whole, which keeps every observable state
 * a valid prefix at the cost of O(records) IO per commit -- bounded by
 * committing on a time cadence that stretches as the file grows.  The
 * cadence also refreshes the file mtime, which is what the popsweep
 * supervisor's stall detector watches.
 */
class CheckpointWriter
{
  public:
    CheckpointWriter(std::string path, std::string header,
                     std::size_t next)
        : path_(std::move(path)), header_(std::move(header)),
          next_(next), lastCommit_(std::chrono::steady_clock::now())
    {}

    /** Seed the writer with the already-validated resumed prefix. */
    void
    addResumed(std::string record)
    {
        lines_.push_back(std::move(record));
    }

    /** Commit the resumed prefix (even if empty: the header must be
     *  on disk before the supervisor can trust the file). */
    void
    commitInitial()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        commitLocked();
    }

    void
    offer(std::size_t index, std::string record)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        parked_.emplace(index, std::move(record));
        while (!parked_.empty() && parked_.begin()->first == next_) {
            lines_.push_back(std::move(parked_.begin()->second));
            parked_.erase(parked_.begin());
            ++next_;
            ++uncommitted_;
        }
        if (uncommitted_ == 0)
            return;
        // Stretch the commit interval as the file grows so total IO
        // stays near-linear; floor of 1s keeps small runs durable and
        // the mtime fresh for stall detection.
        const double interval =
            std::max(1.0, static_cast<double>(lines_.size()) / 50000.0);
        if (secondsSince(lastCommit_) >= interval)
            commitLocked();
    }

    void
    finish()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!parked_.empty())
            fatal("checkpoint %s: %zu shard records never became "
                  "appendable (gap in the canonical order)",
                  path_.c_str(), parked_.size());
        if (uncommitted_ > 0)
            commitLocked();
    }

  private:
    void
    commitLocked()
    {
        std::string contents = header_;
        for (const std::string &line : lines_)
            contents += line;
        atomicWriteFile(path_, contents);
        uncommitted_ = 0;
        lastCommit_ = std::chrono::steady_clock::now();
    }

    std::string path_;
    std::string header_;
    std::vector<std::string> lines_;  //!< canonical-order records
    std::map<std::size_t, std::string> parked_;
    std::size_t next_;          //!< next global index to append
    std::size_t uncommitted_ = 0;
    std::chrono::steady_clock::time_point lastCommit_;
    std::mutex mutex_;
};

} // namespace

std::uint64_t
populationFingerprint(const PopulationConfig &cfg, std::size_t measures)
{
    std::uint64_t h = 0x506F7043 ^ 0x6B707431;  // "PopC" ^ "kpt1"
    for (char c : cfg.moduleId)
        h = Rng::mix64(h ^ static_cast<unsigned char>(c));
    h = Rng::mix64(h ^ static_cast<std::uint64_t>(cfg.modules));
    h = Rng::mix64(h ^ cfg.victimsPerSubarray);
    h = Rng::mix64(h ^ (cfg.oddOnly ? 1 : 0));
    h = Rng::mix64(h ^ cfg.seed);
    h = Rng::mix64(h ^ cfg.rowsPerSubarray);
    h = Rng::mix64(h ^ (cfg.perVictimChunks ? 1 : 0));
    h = Rng::mix64(h ^ cfg.victimChunk);
    h = Rng::mix64(h ^ static_cast<std::uint64_t>(measures));
    return h;
}

CheckpointScan
scanCheckpoint(const std::string &path)
{
    CheckpointScan scan;
    std::ifstream in(path);
    if (!in)
        return scan;
    std::string line;
    if (!std::getline(in, line))
        return scan;
    CheckpointHeader h;
    if (!parseHeader(line, &h))
        return scan;
    scan.valid = true;
    scan.fingerprint = h.fingerprint;
    scan.measures = h.measures;
    scan.shards = h.shards;
    scan.base = h.base;

    std::size_t expect = h.base;
    while (std::getline(in, line)) {
        ShardRecord rec;
        if (!parseRecord(in, line, expect, h.shards, h.measures,
                         &rec)) {
            scan.torn = true;
            break;
        }
        ++scan.records;
        ++expect;
    }
    return scan;
}

std::vector<std::pair<std::size_t, ShardRecord>>
loadCheckpointRecords(const std::string &path, std::uint64_t fingerprint,
                      std::size_t measures, std::size_t total_shards)
{
    std::vector<std::pair<std::size_t, ShardRecord>> loaded;
    std::ifstream in(path);
    if (!in)
        return loaded;

    std::string line;
    if (!std::getline(in, line))
        return loaded;
    CheckpointHeader h;
    if (!parseHeader(line, &h))
        fatal("checkpoint %s: unrecognized header", path.c_str());
    if (h.fingerprint != fingerprint || h.measures != measures) {
        fatal("checkpoint %s was written by a different sweep "
              "configuration (fingerprint %016llx vs %016llx); "
              "refusing to resume",
              path.c_str(),
              static_cast<unsigned long long>(h.fingerprint),
              static_cast<unsigned long long>(fingerprint));
    }
    if (h.shards != total_shards)
        fatal("checkpoint %s plans %zu shards, expected %zu",
              path.c_str(), h.shards, total_shards);

    std::size_t expect = h.base;
    while (std::getline(in, line)) {
        ShardRecord rec;
        if (!parseRecord(in, line, expect, total_shards, measures,
                         &rec))
            break;
        loaded.emplace_back(expect, std::move(rec));
        ++expect;
    }
    return loaded;
}

SweepResult
sweepPopulation(const PopulationConfig &cfg,
                const std::vector<MeasureFn> &measures,
                const SweepOptions &opt)
{
    const auto wall_start = std::chrono::steady_clock::now();
    const int jobs = exec::resolveJobs(cfg.jobs);
    const std::uint64_t fingerprint =
        populationFingerprint(cfg, measures.size());

    const std::vector<RowId> victims = populationVictims(cfg);
    const std::vector<ShardPlan> shards =
        planPopulationShards(cfg, victims.size());

    const std::size_t begin = std::min(opt.shardBegin, shards.size());
    const std::size_t end =
        std::min(opt.shardEnd, shards.size());
    if (begin > end)
        fatal("sweepPopulation: shard range [%zu, %zu) is invalid",
              begin, end);
    const std::size_t range = end - begin;

    std::vector<ShardRecord> records(range);
    std::vector<bool> resumed(range, false);

    // ---- resume -------------------------------------------------------
    std::size_t resumed_count = 0;
    if (!opt.checkpointPath.empty()) {
        auto loaded =
            loadCheckpointRecords(opt.checkpointPath, fingerprint,
                                  measures.size(), shards.size());
        if (!loaded.empty() && loaded.front().first != begin)
            fatal("checkpoint %s covers shards starting at %zu, "
                  "expected %zu; refusing to resume",
                  opt.checkpointPath.c_str(), loaded.front().first,
                  begin);
        for (auto &[index, rec] : loaded) {
            if (index >= end)
                break;
            records[index - begin] = std::move(rec);
            records[index - begin].report.firstSlot =
                shards[index].slotBase;
            resumed[index - begin] = true;
            ++resumed_count;
        }
    }

    // ---- checkpoint writer (canonical-order atomic commits) -----------
    std::unique_ptr<CheckpointWriter> ckpt;
    if (!opt.checkpointPath.empty()) {
        std::string header = "popckpt1 fp=" +
                             std::to_string(fingerprint) +
                             " measures=" +
                             std::to_string(measures.size()) +
                             " shards=" + std::to_string(shards.size()) +
                             " base=" + std::to_string(begin) + '\n';
        ckpt = std::make_unique<CheckpointWriter>(
            opt.checkpointPath, std::move(header),
            begin + resumed_count);
        for (std::size_t i = 0; i < resumed_count; ++i)
            ckpt->addResumed(encodeRecord(begin + i, records[i]));
        // Rewrite the validated prefix rather than trusting whatever
        // the old file ends with; from here on every commit replaces
        // the file atomically.
        ckpt->commitInitial();
    }

    if (obs::traceOn()) [[unlikely]]
        obs::trace().event(
            "sweep_start",
            {{"module_id", cfg.moduleId},
             {"modules", static_cast<std::int64_t>(cfg.modules)},
             {"victims", victims.size() *
                             static_cast<std::size_t>(
                                 std::max(0, cfg.modules))},
             {"measures", measures.size()},
             {"shards", range},
             {"shard_base", begin},
             {"resumed", resumed_count},
             {"jobs", static_cast<std::int64_t>(jobs)}});

    // ---- tester arena pool -------------------------------------------
    //
    // Module instances of one sweep differ only in their device seed
    // (populationDeviceConfig), so a finished shard's tester can be
    // re-seeded for the next shard with the O(populated-rows)
    // Device::reset instead of reconstructing the whole arena: row
    // arrays, TRR rings, and the executor's shape-keyed plan cache all
    // stay warm.  The pool holds at most `jobs` testers.  A reset
    // tester is bit-identical to a fresh one (pinned by
    // DeviceResetTest), so results do not depend on which arena a
    // shard lands on.
    std::mutex arena_mutex;
    std::vector<std::unique_ptr<ModuleTester>> arenas;

    // ---- sweep --------------------------------------------------------
    exec::parallelFor(jobs, range, [&](std::size_t ri) {
        if (resumed[ri])
            return;
        const ShardPlan &shard = shards[begin + ri];
        const auto shard_start = std::chrono::steady_clock::now();

        std::unique_ptr<ModuleTester> tester_slot;
        {
            std::lock_guard<std::mutex> lock(arena_mutex);
            if (!arenas.empty()) {
                tester_slot = std::move(arenas.back());
                arenas.pop_back();
            }
        }
        dram::DeviceConfig dev_cfg =
            populationDeviceConfig(cfg, shard.module);
        if (tester_slot)
            tester_slot->reset(dev_cfg.seed);
        else
            tester_slot =
                std::make_unique<ModuleTester>(std::move(dev_cfg));
        ModuleTester &tester = *tester_slot;
        if (cfg.setup)
            cfg.setup(tester);

        // The executor's stats survive a reset (the plan cache is
        // kept warm on purpose); report per-shard deltas.
        const bender::ExecStats stats_before =
            tester.bench().executor().stats();

        ShardRecord &rec = records[ri];
        rec.sketches.assign(measures.size(),
                            stats::SampleSketch(opt.sketchAlpha));
        for (std::size_t v = shard.victimBegin; v < shard.victimEnd;
             ++v) {
            for (std::size_t i = 0; i < measures.size(); ++i) {
                const std::uint64_t hc =
                    measures[i](tester, victims[v]);
                rec.sketches[i].add(
                    hc == kNoFlip
                        ? std::numeric_limits<double>::quiet_NaN()
                        : static_cast<double>(hc));
            }
        }

        ShardReport &r = rec.report;
        r.module = shard.module;
        r.firstSlot = shard.slotBase;
        r.victims = shard.victimEnd - shard.victimBegin;
        r.workUnits = r.victims * measures.size();
        r.seconds = secondsSince(shard_start);
        r.acts = tester.device().counters().acts;
        r.populatedRows = tester.device().populatedRowCount();
        const bender::ExecStats &xs = tester.bench().executor().stats();
        r.fastPathIterations =
            xs.fastPathIterations - stats_before.fastPathIterations;
        r.planCacheHits =
            xs.planCacheHits - stats_before.planCacheHits;
        r.planCacheMisses =
            xs.planCacheMisses - stats_before.planCacheMisses;

        {
            std::lock_guard<std::mutex> lock(arena_mutex);
            arenas.push_back(std::move(tester_slot));
        }
        if (ckpt)
            ckpt->offer(begin + ri, encodeRecord(begin + ri, rec));
    });

    if (ckpt)
        ckpt->finish();

    // ---- canonical-order fleet merge ----------------------------------
    SweepResult result;
    result.sketches.assign(measures.size(),
                           stats::SampleSketch(opt.sketchAlpha));
    for (const ShardRecord &rec : records) {
        if (rec.sketches.size() != measures.size())
            fatal("sweepPopulation: shard record with %zu sketches, "
                  "expected %zu",
                  rec.sketches.size(), measures.size());
        for (std::size_t i = 0; i < measures.size(); ++i)
            result.sketches[i].merge(rec.sketches[i]);
    }

    result.telemetry.jobs = jobs;
    result.telemetry.perVictimChunks = cfg.perVictimChunks;
    result.telemetry.wallSeconds = secondsSince(wall_start);
    result.telemetry.shards.reserve(records.size());
    for (const ShardRecord &rec : records)
        result.telemetry.shards.push_back(rec.report);
    result.resumedShards = resumed_count;
    result.totalShards = range;

    if (obs::traceOn()) [[unlikely]]
        obs::trace().event(
            "sweep_end",
            {{"wall_s", result.telemetry.wallSeconds},
             {"units", result.telemetry.workUnits()},
             {"shards", records.size()},
             {"resumed", resumed_count}});
    return result;
}

} // namespace pud::hammer
