#include "hammer/reveng.h"

#include <algorithm>

#include "util/logging.h"

namespace pud::hammer {

std::vector<RowId>
findDisturbanceNeighbors(ModuleTester &tester, BankId bank,
                         RowId logical_aggressor, std::uint64_t hammers,
                         RowId window)
{
    dram::Device &dev = tester.device();
    const ColId cols = dev.config().cols;
    const RowId rows = dev.rowsPerBank();

    // Checkerboard victims hold both bit values, so cells of either
    // flip direction can fire.
    const RowData aggr_data(cols, DataPattern::P55);
    const RowData probe_data(cols, DataPattern::PAA);

    const RowId lo =
        logical_aggressor > window ? logical_aggressor - window : 0;
    const RowId hi = std::min(rows - 1, logical_aggressor + window);

    for (RowId r = lo; r <= hi; ++r) {
        if (r == logical_aggressor)
            dev.writeRowDirect(bank, r, aggr_data);
        else
            dev.writeRowDirect(bank, r, probe_data);
    }

    PatternTimings t;
    t.tAggOn = units::fromNs(70200.0);  // RowPress-amplified
    tester.bench().run(
        singleSidedRowHammer(bank, logical_aggressor, hammers, t));

    std::vector<RowId> flipped;
    for (RowId r = lo; r <= hi; ++r) {
        if (r == logical_aggressor)
            continue;
        if (tester.bench().countBitflips(bank, r, probe_data) > 0)
            flipped.push_back(r);
    }
    return flipped;
}

dram::MappingScheme
identifyMappingScheme(ModuleTester &tester, BankId bank)
{
    using dram::MappingScheme;
    const MappingScheme candidates[] = {
        MappingScheme::Sequential,
        MappingScheme::MirroredPairs,
        MappingScheme::XorFold,
    };

    // Sample aggressors across 8-row blocks (all modeled schemes are
    // local within aligned 8-row groups).
    const RowId rows = tester.device().rowsPerBank();
    std::vector<RowId> samples;
    for (RowId r = 8; r + 8 < rows && samples.size() < 12; r += rows / 13)
        samples.push_back((r & ~RowId(7)) | (samples.size() % 8));

    int best_score = -1;
    MappingScheme best = MappingScheme::Sequential;
    for (MappingScheme scheme : candidates) {
        dram::RowMapping mapping(scheme);
        int score = 0;
        for (RowId aggr : samples) {
            const auto flipped =
                findDisturbanceNeighbors(tester, bank, aggr);
            const RowId phys = mapping.toPhysical(aggr);
            bool ok = true;
            for (int d : {-1, 1}) {
                const RowId neighbor_logical =
                    mapping.toLogical(phys + d);
                if (std::find(flipped.begin(), flipped.end(),
                              neighbor_logical) == flipped.end())
                    ok = false;
            }
            if (ok)
                ++score;
        }
        if (score > best_score) {
            best_score = score;
            best = scheme;
        }
    }
    return best;
}

bool
rowCloneWorks(ModuleTester &tester, BankId bank, RowId src_logical,
              RowId dst_logical)
{
    dram::Device &dev = tester.device();
    const ColId cols = dev.config().cols;
    const RowData src_data(cols, DataPattern::PAA);
    const RowData dst_data(cols, DataPattern::P55);
    dev.writeRowDirect(bank, src_logical, src_data);
    dev.writeRowDirect(bank, dst_logical, dst_data);

    PatternTimings t;
    Program p;
    p.act(bank, src_logical, t.base.tRP)
        .pre(bank, t.base.tRAS)
        .act(bank, dst_logical, t.comraPreToAct)
        .pre(bank, t.base.tRAS);
    tester.bench().run(p);

    return dev.readRowDirect(bank, dst_logical) == src_data;
}

std::vector<RowId>
findSubarrayBoundaries(ModuleTester &tester, BankId bank)
{
    const RowId rows = tester.device().rowsPerBank();
    std::vector<RowId> starts{0};
    for (RowId r = 0; r + 1 < rows; ++r) {
        if (!rowCloneWorks(tester, bank, r, r + 1))
            starts.push_back(r + 1);
    }
    return starts;
}

std::vector<RowId>
discoverSimraGroup(ModuleTester &tester, BankId bank, RowId r1_logical,
                   RowId r2_logical)
{
    dram::Device &dev = tester.device();
    const ColId cols = dev.config().cols;
    const RowData canvas(cols, DataPattern::P00);
    const RowData marker(cols, DataPattern::PFF);

    // Blanket the subarray of r1 with the canvas pattern.
    const RowId rps = dev.config().rowsPerSubarray;
    const RowId phys1 = dev.toPhysical(r1_logical);
    const RowId base = (phys1 / rps) * rps;
    for (RowId p = base; p < base + rps; ++p)
        dev.writeRowDirect(bank, dev.toLogical(p), canvas);

    PatternTimings t;
    Program prog;
    const int data_index = prog.addData(marker);
    prog.act(bank, r1_logical, t.base.tRP)
        .pre(bank, t.simraActToPre)
        .act(bank, r2_logical, t.simraPreToAct)
        .nop(t.base.tRCD)
        .wr(bank, data_index, 0)
        .pre(bank, t.base.tRAS);
    tester.bench().run(prog);

    std::vector<RowId> group;
    for (RowId p = base; p < base + rps; ++p) {
        const RowId logical = dev.toLogical(p);
        if (dev.readRowDirect(bank, logical) == marker)
            group.push_back(logical);
    }
    std::sort(group.begin(), group.end());
    return group;
}

bool
detectTrr(ModuleTester &tester, BankId bank)
{
    dram::Device &dev = tester.device();
    const ColId cols = dev.config().cols;
    const RowId rps = dev.config().rowsPerSubarray;

    // Profile a handful of candidate victims and pick the weakest so
    // the over-hammering margin is large.
    ModuleTester::Options opt;
    RowId victim = dram::kNoRow;
    std::uint64_t hc = kNoFlip;
    for (RowId v = rps / 4 + 1; v + 8 < rps; v += rps / 8) {
        const std::uint64_t h = tester.rhDouble(v, opt);
        if (h < hc) {
            hc = h;
            victim = v;
        }
    }
    if (hc == kNoFlip)
        fatal("detectTrr: no vulnerable victim found to probe with");

    // Hammer to 3x HC_first at the nominal pace with periodic REF.
    const RowData aggr_data(cols, DataPattern::P55);
    const RowData victim_data(cols, DataPattern::PAA);
    const RowId a1 = dev.toLogical(victim - 1);
    const RowId a2 = dev.toLogical(victim + 1);
    dev.writeRowDirect(bank, a1, aggr_data);
    dev.writeRowDirect(bank, a2, aggr_data);
    dev.writeRowDirect(bank, dev.toLogical(victim), victim_data);

    PatternTimings t;
    const std::uint64_t cycles = 3 * hc / 78 + 1;
    Program p;
    const Time slot = t.base.tREFI / 156;
    const Time act_gap = std::max(t.base.tRP, slot - t.base.tRAS);
    p.loopBegin(cycles);
    for (int i = 0; i < 78; ++i) {
        p.act(bank, a1, act_gap).pre(bank, t.base.tRAS);
        p.act(bank, a2, act_gap).pre(bank, t.base.tRAS);
    }
    p.ref(t.base.tRP);
    p.loopEnd();
    tester.bench().run(p);

    const bool flipped =
        tester.bench().countBitflips(bank, dev.toLogical(victim),
                                     victim_data) > 0;
    // No flip despite 3x the profiled threshold within a fraction of
    // the refresh window => a targeted mitigation intervened.
    return !flipped;
}

} // namespace pud::hammer
