/**
 * @file
 * Multi-process fleet sweeps: the popsweep supervisor.
 *
 * sweepPopulation (population.h) scales across threads within one
 * process; popsweep scales across *processes*.  The supervisor forks N
 * workers, gives each a contiguous range of the canonical shard plan,
 * and coordinates purely at the file level: every worker owns one
 * popckpt1 checkpoint file (crash-safe atomic commits, global shard
 * indices) plus two sidecars -- a meta record and a pud::obs metrics
 * snapshot -- all written atomically, so the supervisor never observes
 * a torn file.
 *
 * Fault model: a worker that exits abnormally, or whose checkpoint
 * mtime stops advancing for longer than the stall timeout, is killed
 * and re-forked; the replacement resumes from the worker's own
 * checkpoint (the committed prefix is never recomputed).  Workers set
 * PR_SET_PDEATHSIG so a dying supervisor reaps the whole tree.
 *
 * Determinism contract (same as sweepPopulation, extended across
 * processes): the fleet sketch is the per-shard sketches merged in
 * global shard-index order, each shard's sketch depends only on its
 * own identically-seeded tester, and worker ranges depend only on
 * (shards, workers) -- so stdout built from the merged sketches is
 * byte-identical across any (workers x jobs x interrupt/restart)
 * schedule, and identical to the single-process sweepPopulation path.
 */

#ifndef PUD_HAMMER_POPSWEEP_H
#define PUD_HAMMER_POPSWEEP_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hammer/population.h"

namespace pud::hammer {

/** Knobs of one popsweep call beyond the PopulationConfig. */
struct PopsweepOptions
{
    /**
     * Coordination directory (created if absent): worker checkpoints
     * and sidecars live here, and a rerun pointing at the same
     * directory resumes every worker from its committed prefix.
     */
    std::string dir;

    /** Worker processes to fork; must be >= 1. */
    int workers = 1;

    /** Threads inside each worker (PopulationConfig::jobs). */
    int jobsPerWorker = 1;

    /** Relative quantile error bound of the per-measure sketches. */
    double sketchAlpha = 0.01;

    /**
     * A live worker whose checkpoint file has not been committed to
     * for this long is presumed wedged, killed, and restarted.  The
     * checkpoint writer commits on a ~1s-floor cadence precisely so
     * this mtime watch has a heartbeat to observe.
     */
    double stallTimeoutSeconds = 120.0;

    /** Abnormal exits / stalls tolerated per worker before fatal. */
    int maxRestartsPerWorker = 3;
};

/** What one worker did, as observed by the supervisor. */
struct WorkerReport
{
    int worker = 0;
    std::size_t shardBegin = 0;  //!< global shard range [begin, end)
    std::size_t shardEnd = 0;
    int restarts = 0;            //!< respawns after crash/stall
    std::uint64_t peakRssBytes = 0;  //!< worker-reported getrusage peak
    double wallSeconds = 0.0;    //!< final (successful) attempt only
    std::size_t resumedShards = 0;
};

/** Fleet result of a popsweep run. */
struct PopsweepResult
{
    /**
     * Merged fleet view, shaped exactly like a single-process
     * sweepPopulation over the full plan: sketches merged in global
     * shard order, telemetry concatenating every worker's per-shard
     * reports in that same order.
     */
    SweepResult sweep;

    std::vector<WorkerReport> workers;

    /**
     * Sum of the workers' self-reported peak RSS.  This is the honest
     * multi-process memory figure: RUSAGE_CHILDREN reports the
     * *maximum* child, not the sum, so each worker records its own
     * peak in its meta sidecar and the supervisor adds them up.
     */
    std::uint64_t aggregateRssBytes = 0;
};

/**
 * Fork `opt.workers` processes and sweep the population across them;
 * blocks until every shard is accounted for.  Fatal when a worker
 * exceeds its restart budget or a completed worker file fails
 * validation.  Requires a POSIX host (fork/waitpid).
 */
PopsweepResult popsweep(const PopulationConfig &cfg,
                        const std::vector<MeasureFn> &measures,
                        const PopsweepOptions &opt);

/** The contiguous shard range worker `w` of `workers` owns. */
std::pair<std::size_t, std::size_t>
popsweepWorkerRange(std::size_t shards, int workers, int w);

} // namespace pud::hammer

#endif // PUD_HAMMER_POPSWEEP_H
