#include "hammer/tester.h"

#include <algorithm>

#include "hammer/enumerate.h"
#include "lint/absint.h"
#include "lint/effects.h"
#include "lint/linter.h"
#include "util/logging.h"

namespace pud::hammer {

namespace {

/**
 * Probe builder that patches one loop's trip count into a prebuilt
 * pattern.  Every probe of an HC_first search then shares the base
 * program's *shape*, so the executor's plan cache compiles and
 * pre-flight lints the pattern once for the whole bisection instead
 * of once per probe (bender/plan.h).
 */
std::function<Program(std::uint64_t)>
countPatchedBuilder(Program base, std::size_t loop_index)
{
    return [base = std::move(base), loop_index](std::uint64_t n) {
        return base.withLoopCount(loop_index, n);
    };
}

} // namespace

std::vector<dram::SubarrayId>
ModuleTester::testedSubarrays(int count) const
{
    return hammer::testedSubarrays(device().config(), count);
}

std::vector<RowId>
ModuleTester::sampleVictims(RowId victims_per_subarray, bool odd_only,
                            int subarrays) const
{
    return hammer::sampleVictims(device().config(),
                                 victims_per_subarray, odd_only,
                                 subarrays);
}

std::uint64_t
ModuleTester::measureWithPattern(
    const Options &opt, DataPattern pattern, RowId victim,
    const std::vector<RowId> &aggressors,
    const std::function<Program(std::uint64_t)> &raw_build)
{
    // Optionally rewrite every probe to interleave nominal REFs at
    // the tREFI cadence.
    const auto build = [&](std::uint64_t n) {
        Program prog = raw_build(n);
        if (opt.refreshInterleave)
            prog = withRefInterleave(prog, opt.timings.base);
        return prog;
    };

    dram::Device &dev = device();
    const ColId cols = dev.config().cols;
    const RowData aggr_data(cols, pattern);
    const RowData victim_data(cols, dram::negate(pattern));
    const BankId bank = opt.bank;

    const RowId victim_logical = dev.toLogical(victim);

    // Validate the pattern's shape once per measurement (not per
    // trial: only the trip counts change with n).  Errors would fatal
    // deep inside the device model; suspicious timing violations would
    // silently skew the HC_first search, so surface them once.
    {
        const lint::LintResult pre = lint::requireClean(
            build(2), dev.config(), "ModuleTester");
        if (pre.count(lint::Severity::Warning) > 0 && !warnedLint_) {
            warnedLint_ = true;
            for (const lint::Diag &d : pre.diags) {
                if (d.severity == lint::Severity::Warning)
                    warn("lint [%s]: %s", name(d.code),
                         d.message.c_str());
            }
        }
    }

    // Static reachability (once per tester): fold the full-budget
    // program through the effect predictor; if even a worst-case weak
    // cell stays below the flip threshold, the search is guaranteed to
    // burn its whole hammer budget and report no-flip.
    if (!checkedReach_) {
        checkedReach_ = true;
        const lint::ProgramEffects fx = lint::summarizeEffects(
            build(opt.search.maxHammers), dev.config());
        const lint::EffectReport rep =
            lint::predictEffects(fx, dev.config());
        if (!rep.anyLikely &&
            rep.hottestCloses >= lint::kHammerIntentCloses) {
            warn("HC_first sweep is statically unreachable on %s: at "
                 "the %llu-hammer budget the best-case predicted "
                 "damage is %.3g of the flip threshold; the search "
                 "will report no-flip",
                 dev.config().profile.moduleId.c_str(),
                 static_cast<unsigned long long>(opt.search.maxHammers),
                 rep.victims.empty()
                     ? 0.0
                     : rep.victims.front().optimisticDamage);
        }
    }

    auto trial = [&](std::uint64_t n) -> bool {
        for (RowId a : aggressors)
            dev.writeRowDirect(bank, dev.toLogical(a), aggr_data);
        dev.writeRowDirect(bank, victim_logical, victim_data);
        const auto result = bench_.run(build(n));
        // The paper strictly bounds test programs within the refresh
        // window so retention failures cannot interfere (§3.1); warn
        // when a sweep (e.g. a long t_AggOn press) exceeds it.
        const Time duration = result.endTime - result.startTime;
        if (duration > dev.config().timings.tREFW &&
            !warnedWindow_) {
            warnedWindow_ = true;
            warn("test program runs %.1f ms, beyond the %.0f ms "
                 "refresh window; real-chip runs would need "
                 "multi-window splitting",
                 static_cast<double>(duration) / units::ms,
                 static_cast<double>(dev.config().timings.tREFW) /
                     units::ms);
        }
        return bench_.countBitflips(bank, victim_logical, victim_data) >
               0;
    };

    return findHcFirst(opt.search, trial);
}

std::uint64_t
ModuleTester::measure(const Options &opt, RowId victim,
                      const std::vector<RowId> &aggressors,
                      const std::function<Program(std::uint64_t)> &build)
{
    if (!opt.searchWcdp) {
        return measureWithPattern(opt, opt.pattern, victim, aggressors,
                                  build);
    }
    std::uint64_t best = kNoFlip;
    for (DataPattern p : dram::kAllPatterns) {
        best = std::min(best, measureWithPattern(opt, p, victim,
                                                 aggressors, build));
    }
    return best;
}

std::uint64_t
ModuleTester::rhDouble(RowId victim, const Options &opt)
{
    if (victim == 0 || victim + 1 >= device().rowsPerBank())
        fatal("rhDouble: victim %u has no double-sided neighbours",
              victim);
    dram::Device &dev = device();
    const RowId a1 = dev.toLogical(victim - 1);
    const RowId a2 = dev.toLogical(victim + 1);
    return measure(opt, victim, {victim - 1, victim + 1},
                   countPatchedBuilder(
                       doubleSidedRowHammer(opt.bank, a1, a2, 1,
                                            opt.timings),
                       0));
}

std::uint64_t
ModuleTester::rhSingle(RowId victim, const Options &opt)
{
    dram::Device &dev = device();
    const RowId aggr = victim - 1;
    const RowId a = dev.toLogical(aggr);
    return measure(opt, victim, {aggr},
                   countPatchedBuilder(
                       singleSidedRowHammer(opt.bank, a, 1, opt.timings),
                       0));
}

RowId
ModuleTester::farRowInSubarray(RowId near, RowId spread) const
{
    // A "far" partner that stays within the subarray regardless of
    // the configured geometry (the paper uses 100 rows on 512+-row
    // subarrays; small test geometries clamp the spread).
    const RowId rps = rowsPerSubarray();
    const RowId s = std::max<RowId>(4, std::min<RowId>(spread, rps / 2));
    const RowId offset = near % rps;
    return offset + s < rps ? near + s : near - s;
}

std::uint64_t
ModuleTester::farDouble(RowId victim, const Options &opt, RowId spread)
{
    dram::Device &dev = device();
    const RowId near = victim - 1;
    const RowId far = farRowInSubarray(near, spread);
    const RowId a1 = dev.toLogical(near);
    const RowId a2 = dev.toLogical(far);
    return measure(opt, victim, {near, far},
                   countPatchedBuilder(
                       doubleSidedRowHammer(opt.bank, a1, a2, 1,
                                            opt.timings),
                       0));
}

std::uint64_t
ModuleTester::comraDouble(RowId victim, const Options &opt, bool reversed)
{
    dram::Device &dev = device();
    RowId src = victim - 1;
    RowId dst = victim + 1;
    if (reversed)
        std::swap(src, dst);
    const RowId s = dev.toLogical(src);
    const RowId d = dev.toLogical(dst);
    return measure(opt, victim, {src, dst},
                   countPatchedBuilder(
                       comraHammer(opt.bank, s, d, 1, opt.timings), 0));
}

std::uint64_t
ModuleTester::comraSingle(RowId victim, const Options &opt, RowId spread,
                          bool reversed)
{
    dram::Device &dev = device();
    const RowId near = victim - 1;
    const RowId far = farRowInSubarray(near, spread);
    RowId src = near, dst = far;
    if (reversed)
        std::swap(src, dst);
    const RowId s = dev.toLogical(src);
    const RowId d = dev.toLogical(dst);
    return measure(opt, victim, {src, dst},
                   countPatchedBuilder(
                       comraHammer(opt.bank, s, d, 1, opt.timings), 0));
}

std::optional<SimraPlan>
ModuleTester::planSimraDouble(RowId victim, int n) const
{
    if (n < 2 || n > 16 || (n & (n - 1)) != 0)
        return std::nullopt;
    if ((victim & 1) == 0 || victim == 0)
        return std::nullopt;

    SimraPlan plan;
    plan.n = n;
    plan.victim = victim;
    plan.doubleSided = true;
    plan.r1 = victim - 1;  // even

    // Differing bits 1..k (bit 0 excluded): the group rows are spaced
    // by 2, sandwiching the odd victim between r1 and r1 + 2.
    RowId mask = 0;
    const int k = __builtin_ctz(static_cast<unsigned>(n));
    for (int b = 1; b <= k; ++b)
        mask |= RowId(1) << b;

    plan.r2 = plan.r1 ^ mask;

    const RowId rps = rowsPerSubarray();
    if (plan.r1 / rps != plan.r2 / rps)
        return std::nullopt;

    dram::SimraDecoder decoder(rps);
    plan.group = decoder.activatedSet(plan.r1, plan.r2);
    if (plan.group.size() != static_cast<std::size_t>(n))
        return std::nullopt;
    // The victim must be sandwiched and not itself activated.
    const bool has_low =
        std::find(plan.group.begin(), plan.group.end(), victim - 1) !=
        plan.group.end();
    const bool has_high =
        std::find(plan.group.begin(), plan.group.end(), victim + 1) !=
        plan.group.end();
    const bool activated =
        std::find(plan.group.begin(), plan.group.end(), victim) !=
        plan.group.end();
    if (!has_low || !has_high || activated)
        return std::nullopt;
    return plan;
}

std::optional<SimraPlan>
ModuleTester::planSimraSingle(RowId victim, int n) const
{
    if (n < 2 || n > 32 || (n & (n - 1)) != 0)
        return std::nullopt;
    SimraPlan plan;
    plan.n = n;
    plan.victim = victim;
    plan.doubleSided = false;

    // Contiguous block starting just above the victim; the block base
    // must be N-aligned for the bit-combination decoder.
    const RowId base = victim + 1;
    if ((base & static_cast<RowId>(n - 1)) != 0)
        return std::nullopt;
    plan.r1 = base;
    plan.r2 = base + static_cast<RowId>(n - 1);

    const RowId rps = rowsPerSubarray();
    if (plan.r1 / rps != plan.r2 / rps ||
        victim / rps != plan.r1 / rps)
        return std::nullopt;

    dram::SimraDecoder decoder(rps);
    plan.group = decoder.activatedSet(plan.r1, plan.r2);
    if (plan.group.size() != static_cast<std::size_t>(n))
        return std::nullopt;
    return plan;
}

std::uint64_t
ModuleTester::simraDouble(RowId victim, int n, const Options &opt)
{
    auto plan = planSimraDouble(victim, n);
    if (!plan)
        fatal("simraDouble: victim %u cannot be sandwiched by an "
              "N=%d group", victim, n);
    dram::Device &dev = device();
    const RowId r1 = dev.toLogical(plan->r1);
    const RowId r2 = dev.toLogical(plan->r2);
    return measure(opt, victim, plan->group,
                   countPatchedBuilder(
                       simraHammer(opt.bank, r1, r2, 1, opt.timings),
                       0));
}

std::uint64_t
ModuleTester::simraSingle(RowId victim, int n, const Options &opt)
{
    auto plan = planSimraSingle(victim, n);
    if (!plan)
        fatal("simraSingle: victim %u cannot border an N=%d block",
              victim, n);
    dram::Device &dev = device();
    const RowId r1 = dev.toLogical(plan->r1);
    const RowId r2 = dev.toLogical(plan->r2);
    return measure(opt, victim, plan->group,
                   countPatchedBuilder(
                       simraHammer(opt.bank, r1, r2, 1, opt.timings),
                       0));
}

std::uint64_t
ModuleTester::combinedRh(RowId victim, const CombinedSpec &spec,
                         const Options &opt)
{
    dram::Device &dev = device();

    CombinedCounts counts;
    RowId comra_src = 0, comra_dst = 0, simra_r1 = 0, simra_r2 = 0;

    if (spec.comraFraction > 0) {
        const std::uint64_t hc = comraDouble(victim, opt);
        if (hc == kNoFlip)
            return kNoFlip;
        counts.comra = static_cast<std::uint64_t>(
            spec.comraFraction * static_cast<double>(hc));
        comra_src = dev.toLogical(victim - 1);
        comra_dst = dev.toLogical(victim + 1);
    }

    std::vector<RowId> extra_aggressors{victim - 1, victim + 1};
    if (spec.simraFraction > 0) {
        auto plan = planSimraDouble(victim, spec.simraN);
        if (!plan)
            return kNoFlip;
        const std::uint64_t hc = simraDouble(victim, spec.simraN, opt);
        if (hc == kNoFlip)
            return kNoFlip;
        counts.simra = static_cast<std::uint64_t>(
            spec.simraFraction * static_cast<double>(hc));
        simra_r1 = dev.toLogical(plan->r1);
        simra_r2 = dev.toLogical(plan->r2);
        extra_aggressors.insert(extra_aggressors.end(),
                                plan->group.begin(), plan->group.end());
    }

    const RowId a1 = dev.toLogical(victim - 1);
    const RowId a2 = dev.toLogical(victim + 1);

    CombinedCounts base_counts = counts;
    base_counts.rowHammer = 1;
    Program base =
        combinedPattern(opt.bank, a1, a2, comra_src, comra_dst,
                        simra_r1, simra_r2, base_counts, opt.timings);
    // The RowHammer loop (the probed one) is always built last.
    const std::size_t rh_loop = base.loopCount() - 1;
    return measure(opt, victim, extra_aggressors,
                   countPatchedBuilder(std::move(base), rh_loop));
}

} // namespace pud::hammer
