#include "hammer/enumerate.h"

#include <algorithm>

namespace pud::hammer {

std::vector<dram::SubarrayId>
testedSubarrays(const dram::DeviceConfig &cfg, int count)
{
    const dram::SubarrayId total = cfg.subarraysPerBank;
    std::vector<dram::SubarrayId> out;
    if (static_cast<dram::SubarrayId>(count) >= total) {
        for (dram::SubarrayId s = 0; s < total; ++s)
            out.push_back(s);
        return out;
    }
    // Two from the beginning, two from the middle, two from the end
    // (paper §4.2); generalized for other counts.
    const int per_zone = count / 3;
    for (int i = 0; i < per_zone; ++i)
        out.push_back(i);
    for (int i = 0; i < per_zone; ++i)
        out.push_back(total / 2 - per_zone / 2 + i);
    for (int i = count - 2 * per_zone; i > 0; --i)
        out.push_back(total - i);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::vector<RowId>
sampleVictims(const dram::DeviceConfig &cfg, RowId victims_per_subarray,
              bool odd_only, int subarrays)
{
    const RowId rps = cfg.rowsPerSubarray;
    std::vector<RowId> victims;
    for (dram::SubarrayId s : testedSubarrays(cfg, subarrays)) {
        const RowId base = s * rps;
        // Interior rows only: distance-2 neighbourhood and SiMRA group
        // geometry must stay inside the subarray.
        const RowId lo = 2, hi = rps - 3;
        const RowId span = hi - lo + 1;
        const RowId count = std::min<RowId>(victims_per_subarray, span);
        for (RowId i = 0; i < count; ++i) {
            RowId offset = lo + static_cast<RowId>(
                                    static_cast<std::uint64_t>(i) *
                                    span / count);
            if (odd_only) {
                // v === 1 (mod 4): guarantees both v-1 and v+1 are in
                // the bit-combination group for every double-sided
                // SiMRA mask (see planSimraDouble).
                offset = (offset & ~RowId(3)) | 1;
                if (offset < lo)
                    offset += 4;
                if (offset > hi)
                    offset -= 4;
            }
            const RowId v = base + offset;
            if (victims.empty() || victims.back() != v)
                victims.push_back(v);
        }
    }
    return victims;
}

} // namespace pud::hammer
