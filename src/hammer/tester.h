/**
 * @file
 * ModuleTester: the characterization front-end for one DRAM module.
 *
 * Wraps a TestBench and exposes per-victim HC_first measurements for
 * every access pattern the paper studies.  All row arguments are
 * *physical* rows: the paper's methodology reverse engineers the
 * logical-to-physical mapping first (§3.2) and then reasons about
 * physical adjacency; the reveng module recovers the mapping blindly
 * and the tests verify it matches the device, so the tester uses the
 * device's translation as the recovered ground truth.
 */

#ifndef PUD_HAMMER_TESTER_H
#define PUD_HAMMER_TESTER_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "bender/host.h"
#include "dram/simra_decoder.h"
#include "hammer/hcfirst.h"
#include "hammer/patterns.h"

namespace pud::hammer {

using dram::ColId;
using dram::DataPattern;
using dram::RowData;

/** Geometry of one planned SiMRA attack. */
struct SimraPlan
{
    RowId r1 = 0;                //!< first issued row (physical)
    RowId r2 = 0;                //!< second issued row (physical)
    std::vector<RowId> group;    //!< simultaneously activated rows
    RowId victim = 0;            //!< the measured victim (physical)
    int n = 0;                   //!< group size
    bool doubleSided = false;
};

/** Characterization front-end for one simulated module. */
class ModuleTester
{
  public:
    /** Per-measurement options. */
    struct Options
    {
        BankId bank = 0;

        /** Aggressor data pattern; victims get the negation (§4.2). */
        DataPattern pattern = DataPattern::P55;

        /** Search all four patterns and report the per-row WCDP. */
        bool searchWcdp = false;

        /**
         * Interleave nominal REF commands into the measured pattern at
         * the tREFI cadence (patterns.h withRefInterleave), modelling a
         * host that keeps refreshing while hammering.  TRR-enabled
         * devices then get sampling opportunities mid-pattern.
         */
        bool refreshInterleave = false;

        PatternTimings timings{};
        HcSearchConfig search{};
    };

    explicit ModuleTester(dram::DeviceConfig cfg) : bench_(std::move(cfg)) {}

    /**
     * Re-seed the underlying bench for the next module instance
     * (arena reuse; see TestBench::reset).  The once-per-tester
     * warning/lint latches stay latched: under arena reuse they mean
     * once per worker slot, which is the intended warning cadence for
     * fleet sweeps anyway.
     */
    void reset(std::uint64_t seed) { bench_.reset(seed); }

    bender::TestBench &bench() { return bench_; }
    dram::Device &device() { return bench_.device(); }
    const dram::Device &device() const { return bench_.device(); }

    /**
     * Sample victim rows: the paper tests six subarrays per module
     * (two each from the beginning, middle, and end of the bank) and,
     * within each, all rows; `victims_per_subarray` caps that with an
     * even stride over interior rows.  `odd_only` restricts to rows
     * that can be sandwiched by a double-sided SiMRA group.
     */
    std::vector<RowId> sampleVictims(RowId victims_per_subarray,
                                     bool odd_only = false,
                                     int subarrays = 6) const;

    // ---- HC_first measurements (victim = physical row) -----------------

    /** Double-sided RowHammer / RowPress (t_AggOn via options). */
    std::uint64_t rhDouble(RowId victim, const Options &opt);

    /** Single-sided RowHammer on the victim's lower neighbour. */
    std::uint64_t rhSingle(RowId victim, const Options &opt);

    /**
     * Far double-sided RowHammer (Fig. 7): the single-sided CoMRA
     * access pattern with a nominal tRP, i.e. alternating the victim's
     * neighbour and a far row.
     */
    std::uint64_t farDouble(RowId victim, const Options &opt,
                            RowId spread = 100);

    /** Double-sided CoMRA: src/dst sandwich the victim (Fig. 3a). */
    std::uint64_t comraDouble(RowId victim, const Options &opt,
                              bool reversed = false);

    /** Single-sided CoMRA: dst far from src (Fig. 3b). */
    std::uint64_t comraSingle(RowId victim, const Options &opt,
                              RowId spread = 100, bool reversed = false);

    /** Double-sided SiMRA-N; victim must be an odd physical row. */
    std::uint64_t simraDouble(RowId victim, int n, const Options &opt);

    /** Single-sided SiMRA-N: victim borders a contiguous group. */
    std::uint64_t simraSingle(RowId victim, int n, const Options &opt);

    /** Geometry planners (exposed for tests and custom experiments). */
    std::optional<SimraPlan> planSimraDouble(RowId victim, int n) const;
    std::optional<SimraPlan> planSimraSingle(RowId victim, int n) const;

    // ---- combined patterns (§6) -----------------------------------------

    struct CombinedSpec
    {
        double comraFraction = 0.0;  //!< pre-hammer CoMRA to this
                                     //!< fraction of its HC_first
        double simraFraction = 0.0;
        int simraN = 4;
    };

    /**
     * Measure the RowHammer hammer count needed to flip the victim
     * after the CoMRA / SiMRA pre-hammering phases (Fig. 20).  The
     * phase HC_firsts are measured first, exactly as in §6.1.
     */
    std::uint64_t combinedRh(RowId victim, const CombinedSpec &spec,
                             const Options &opt);

    // ---- helpers ----------------------------------------------------------

    RowId rowsPerSubarray() const
    {
        return device().config().rowsPerSubarray;
    }

    /** Subarrays tested by default: 2 beginning + 2 middle + 2 end. */
    std::vector<dram::SubarrayId> testedSubarrays(int count = 6) const;

  private:
    /**
     * Run the full HC_first search where each trial initializes
     * `aggressors` with the aggressor pattern and the victim with its
     * negation, executes `build(n)`, and checks the victim.
     */
    std::uint64_t
    measure(const Options &opt, RowId victim,
            const std::vector<RowId> &aggressors,
            const std::function<Program(std::uint64_t)> &build);

    std::uint64_t
    measureWithPattern(const Options &opt, DataPattern pattern,
                       RowId victim, const std::vector<RowId> &aggressors,
                       const std::function<Program(std::uint64_t)> &build);

    /** A same-subarray far partner row for single-sided patterns. */
    RowId farRowInSubarray(RowId near, RowId spread) const;

    bender::TestBench bench_;
    bool warnedWindow_ = false;
    bool warnedLint_ = false;  //!< lint warnings reported once per tester
    bool checkedReach_ = false;  //!< static reachability checked once
};

} // namespace pud::hammer

#endif // PUD_HAMMER_TESTER_H
