#include "hammer/hcfirst.h"

#include <algorithm>

#include "util/logging.h"

namespace pud::hammer {

namespace {

std::uint64_t
searchOnce(const HcSearchConfig &cfg,
           const std::function<bool(std::uint64_t)> &flips_at)
{
    // Exponential ramp to bracket the threshold.
    std::uint64_t lo = 0;
    std::uint64_t hi = std::max<std::uint64_t>(1, cfg.rampStart);
    for (;;) {
        if (hi >= cfg.maxHammers) {
            hi = cfg.maxHammers;
            if (!flips_at(hi))
                return kNoFlip;
            break;
        }
        if (flips_at(hi))
            break;
        lo = hi;
        hi *= 2;
    }

    // Bisect until the bracket width is within the convergence bound:
    // a fraction of the *lower* bound, per the header contract (using
    // the upper bound would let the search stop with a bracket wider
    // than the promised fraction of the reported threshold).  lo == 0
    // (threshold below the initial ramp point) degenerates to a bound
    // of one hammer via the max().
    while (hi - lo > std::max<std::uint64_t>(
                         1, static_cast<std::uint64_t>(
                                cfg.convergence *
                                static_cast<double>(lo)))) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (flips_at(mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace

std::uint64_t
findHcFirst(const HcSearchConfig &cfg,
            const std::function<bool(std::uint64_t)> &flips_at)
{
    if (cfg.maxHammers == 0)
        fatal("findHcFirst: zero hammer budget");
    std::uint64_t best = kNoFlip;
    for (int r = 0; r < std::max(1, cfg.repeats); ++r)
        best = std::min(best, searchOnce(cfg, flips_at));
    return best;
}

} // namespace pud::hammer
