#include "hammer/hcfirst.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace pud::hammer {

namespace {

/** One threshold probe, with its bracket, into the trace/metrics. */
bool
probe(const std::function<bool(std::uint64_t)> &flips_at,
      std::uint64_t hammers, const char *phase, std::uint64_t lo,
      std::uint64_t hi)
{
    const bool flipped = flips_at(hammers);
    if (obs::metricsOn()) [[unlikely]] {
        static const obs::CounterId c =
            obs::metrics().counterId("hammer.hc_probes");
        obs::metrics().add(c);
    }
    if (obs::traceOn()) [[unlikely]]
        obs::trace().event("hc_probe", {{"phase", phase},
                                        {"hammers", hammers},
                                        {"flipped", flipped},
                                        {"lo", lo},
                                        {"hi", hi}});
    return flipped;
}

std::uint64_t
searchOnce(const HcSearchConfig &cfg,
           const std::function<bool(std::uint64_t)> &flips_at)
{
    // Exponential ramp to bracket the threshold.
    std::uint64_t lo = 0;
    std::uint64_t hi = std::max<std::uint64_t>(1, cfg.rampStart);
    for (;;) {
        if (hi >= cfg.maxHammers) {
            hi = cfg.maxHammers;
            if (!probe(flips_at, hi, "ramp", lo, hi))
                return kNoFlip;
            break;
        }
        if (probe(flips_at, hi, "ramp", lo, hi))
            break;
        lo = hi;
        // Doubling past UINT64_MAX/2 would wrap hi to a value below lo
        // (or zero) and the ramp would never terminate; clamp straight
        // to the budget ceiling instead, which the check at the top of
        // the loop then probes once and breaks on.
        hi = hi > cfg.maxHammers / 2 ? cfg.maxHammers : hi * 2;
    }

    // Bisect until the bracket width is within the convergence bound:
    // a fraction of the *lower* bound, per the header contract (using
    // the upper bound would let the search stop with a bracket wider
    // than the promised fraction of the reported threshold).  lo == 0
    // (threshold below the initial ramp point) degenerates to a bound
    // of one hammer via the max().
    while (hi - lo > std::max<std::uint64_t>(
                         1, static_cast<std::uint64_t>(
                                cfg.convergence *
                                static_cast<double>(lo)))) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (probe(flips_at, mid, "bisect", lo, hi))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace

std::uint64_t
findHcFirst(const HcSearchConfig &cfg,
            const std::function<bool(std::uint64_t)> &flips_at)
{
    if (cfg.maxHammers == 0)
        fatal("findHcFirst: zero hammer budget");
    std::uint64_t best = kNoFlip;
    for (int r = 0; r < std::max(1, cfg.repeats); ++r)
        best = std::min(best, searchOnce(cfg, flips_at));
    if (obs::metricsOn()) [[unlikely]] {
        static const obs::CounterId c =
            obs::metrics().counterId("hammer.hc_searches");
        static const obs::HistId h =
            obs::metrics().histId("hammer.hc_first");
        obs::metrics().add(c);
        if (best != kNoFlip)
            obs::metrics().observe(h, best);
    }
    if (obs::traceOn()) [[unlikely]]
        obs::trace().event(
            "hc_result",
            {{"found", best != kNoFlip},
             {"hc", best == kNoFlip ? std::uint64_t(0) : best}});
    return best;
}

} // namespace pud::hammer
