/**
 * @file
 * HC_first search: the bisection algorithm of the paper's §4.2.
 *
 * The search finds the minimum hammer count that induces the first
 * bitflip in a victim row.  A trial functor runs a fresh hammering
 * experiment at a given count and reports whether any bitflip
 * occurred; the search brackets the threshold with an exponential
 * ramp, bisects until the bracket is within 1% (the paper's
 * convergence criterion), repeats the whole search `repeats` times,
 * and reports the minimum observed HC_first.
 */

#ifndef PUD_HAMMER_HCFIRST_H
#define PUD_HAMMER_HCFIRST_H

#include <cstdint>
#include <functional>

namespace pud::hammer {

/** Returned when no bitflip occurs within the hammer budget. */
constexpr std::uint64_t kNoFlip = ~std::uint64_t(0);

/** Parameters of the HC_first search. */
struct HcSearchConfig
{
    /**
     * Maximum hammers per trial.  The paper bounds test programs
     * within the refresh window; at ~92 ns per double-sided round,
     * 64 ms fits ~700K rounds.
     */
    std::uint64_t maxHammers = 700'000;

    /** Bracket convergence as a fraction of the lower bound (1%). */
    double convergence = 0.01;

    /**
     * Number of independent searches; the minimum result is reported
     * (paper: five).  The device model is deterministic per seed, so
     * the default avoids redundant repeats; benches can restore 5.
     */
    int repeats = 1;

    /** Initial ramp point. */
    std::uint64_t rampStart = 512;
};

/**
 * Run the bisection HC_first search.
 *
 * @param flips_at trial functor: hammer `n` times from a fresh state
 *                 and return whether the victim flipped
 * @return the smallest bracketing count, or kNoFlip
 */
std::uint64_t findHcFirst(const HcSearchConfig &cfg,
                          const std::function<bool(std::uint64_t)> &flips_at);

} // namespace pud::hammer

#endif // PUD_HAMMER_HCFIRST_H
