#include "hammer/popsweep.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include <charconv>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace pud::hammer {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
workerCheckpointPath(const std::string &dir, int w)
{
    return dir + "/worker" + std::to_string(w) + ".ckpt";
}

std::string
workerMetaPath(const std::string &dir, int w)
{
    return dir + "/worker" + std::to_string(w) + ".meta";
}

std::string
workerMetricsPath(const std::string &dir, int w)
{
    return dir + "/worker" + std::to_string(w) + ".metrics.json";
}

/** Peak RSS of this process, in bytes (Linux ru_maxrss is KiB). */
std::uint64_t
selfPeakRssBytes()
{
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

template <typename T>
bool
kvInt(std::istream &line, const char *key, T *out)
{
    std::string tok;
    if (!(line >> tok))
        return false;
    const std::string prefix = std::string(key) + "=";
    if (tok.rfind(prefix, 0) != 0)
        return false;
    const char *first = tok.data() + prefix.size();
    const char *last = tok.data() + tok.size();
    const auto [ptr, ec] = std::from_chars(first, last, *out);
    return ec == std::errc() && ptr == last;
}

/** The completion sidecar a worker writes as its very last action. */
struct WorkerMeta
{
    std::uint64_t rssBytes = 0;
    double wallSeconds = 0.0;
    std::size_t resumedShards = 0;
    std::size_t shards = 0;
};

bool
readWorkerMeta(const std::string &path, int worker, WorkerMeta *meta)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line))
        return false;
    std::istringstream ls(line);
    std::string magic;
    int w = -1;
    if (!(ls >> magic) || magic != "popmeta1" ||
        !kvInt(ls, "worker", &w) || w != worker ||
        !kvInt(ls, "rss", &meta->rssBytes))
        return false;
    {
        std::string tok;
        if (!(ls >> tok) || tok.rfind("seconds=", 0) != 0 ||
            !stats::parseHexDouble(tok.substr(8), &meta->wallSeconds))
            return false;
    }
    return kvInt(ls, "resumed", &meta->resumedShards) &&
           kvInt(ls, "shards", &meta->shards);
}

/** Seconds since the file was last modified; negative if absent. */
double
fileAgeSeconds(const std::string &path)
{
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0)
        return -1.0;
    const auto now = std::chrono::system_clock::now();
    const auto mtime =
        std::chrono::system_clock::from_time_t(st.st_mtime);
    return std::chrono::duration<double>(now - mtime).count();
}

/**
 * Worker body, run in the forked child.  Everything after
 * sweepPopulation must stay simple: the sidecars are written
 * atomically (meta last -- its presence certifies the checkpoint is
 * complete) and the child leaves via _exit so no parent-registered
 * atexit hook (e.g. the --metrics printer) runs in the child.
 */
[[noreturn]] void
runWorker(const PopulationConfig &cfg,
          const std::vector<MeasureFn> &measures,
          const PopsweepOptions &opt, int w, std::size_t begin,
          std::size_t end, pid_t supervisor)
{
#if defined(__linux__)
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
    if (::getppid() != supervisor)
        ::_exit(3);  // supervisor died before we armed the death signal

    PopulationConfig wcfg = cfg;
    wcfg.jobs = opt.jobsPerWorker;
    SweepOptions so;
    so.checkpointPath = workerCheckpointPath(opt.dir, w);
    so.sketchAlpha = opt.sketchAlpha;
    so.shardBegin = begin;
    so.shardEnd = end;

    const SweepResult r = sweepPopulation(wcfg, measures, so);

    atomicWriteFile(workerMetricsPath(opt.dir, w),
                    obs::snapshotToJson(obs::metrics().snapshot()));

    std::string meta = "popmeta1 worker=" + std::to_string(w) +
                       " rss=" + std::to_string(selfPeakRssBytes()) +
                       " seconds=" +
                       stats::hexDouble(r.telemetry.wallSeconds) +
                       " resumed=" + std::to_string(r.resumedShards) +
                       " shards=" + std::to_string(r.totalShards) +
                       '\n';
    atomicWriteFile(workerMetaPath(opt.dir, w), meta);
    ::_exit(0);
}

} // namespace

std::pair<std::size_t, std::size_t>
popsweepWorkerRange(std::size_t shards, int workers, int w)
{
    const auto nw = static_cast<std::size_t>(workers);
    const auto i = static_cast<std::size_t>(w);
    return {shards * i / nw, shards * (i + 1) / nw};
}

PopsweepResult
popsweep(const PopulationConfig &cfg,
         const std::vector<MeasureFn> &measures,
         const PopsweepOptions &opt)
{
    const auto wall_start = std::chrono::steady_clock::now();
    if (opt.workers < 1)
        fatal("popsweep: workers must be >= 1 (got %d)", opt.workers);
    if (opt.dir.empty())
        fatal("popsweep: coordination directory is required");
    ::mkdir(opt.dir.c_str(), 0755);  // EEXIST is fine
    struct stat st{};
    if (::stat(opt.dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        fatal("popsweep: cannot create directory %s", opt.dir.c_str());

    const std::uint64_t fingerprint =
        populationFingerprint(cfg, measures.size());
    const std::size_t total_shards =
        planPopulationShards(cfg, populationVictims(cfg).size()).size();

    struct Slot
    {
        int worker = 0;
        std::size_t begin = 0;
        std::size_t end = 0;
        pid_t pid = -1;
        int restarts = 0;
        bool done = false;
        std::chrono::steady_clock::time_point spawnedAt;
    };
    std::vector<Slot> slots(static_cast<std::size_t>(opt.workers));
    for (int w = 0; w < opt.workers; ++w) {
        auto &s = slots[static_cast<std::size_t>(w)];
        s.worker = w;
        std::tie(s.begin, s.end) =
            popsweepWorkerRange(total_shards, opt.workers, w);
    }

    const pid_t supervisor = ::getpid();
    auto spawn = [&](Slot &s) {
        // A crashed predecessor may have died mid-meta; only a meta
        // written *after* the checkpoint commits certifies done-ness,
        // so clear any stale one before (re)spawning.
        std::remove(workerMetaPath(opt.dir, s.worker).c_str());
        std::fflush(nullptr);  // no duplicated stdio buffers in child
        const pid_t pid = ::fork();
        if (pid < 0)
            fatal("popsweep: fork failed for worker %d", s.worker);
        if (pid == 0)
            runWorker(cfg, measures, opt, s.worker, s.begin, s.end,
                      supervisor);
        s.pid = pid;
        s.spawnedAt = std::chrono::steady_clock::now();
    };

    auto restartOrDie = [&](Slot &s, const char *why) {
        if (++s.restarts > opt.maxRestartsPerWorker)
            fatal("popsweep: worker %d exceeded %d restarts (last "
                  "failure: %s)",
                  s.worker, opt.maxRestartsPerWorker, why);
        if (obs::traceOn()) [[unlikely]]
            obs::trace().event(
                "popsweep_restart",
                {{"worker", static_cast<std::int64_t>(s.worker)},
                 {"restarts", static_cast<std::int64_t>(s.restarts)},
                 {"why", std::string(why)}});
        spawn(s);
    };

    for (Slot &s : slots)
        spawn(s);

    // ---- supervise ----------------------------------------------------
    std::size_t remaining = slots.size();
    while (remaining > 0) {
        for (Slot &s : slots) {
            if (s.done || s.pid < 0)
                continue;
            int status = 0;
            const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
            if (r == s.pid) {
                s.pid = -1;
                WorkerMeta meta;
                if (WIFEXITED(status) && WEXITSTATUS(status) == 0 &&
                    readWorkerMeta(workerMetaPath(opt.dir, s.worker),
                                   s.worker, &meta)) {
                    s.done = true;
                    --remaining;
                } else {
                    restartOrDie(s, WIFSIGNALED(status)
                                        ? "killed by signal"
                                        : "abnormal exit");
                }
                continue;
            }
            // Stall watch: the checkpoint writer's commit cadence
            // keeps the file mtime fresh while the worker makes
            // progress; measure from spawn until the first commit.
            const double age =
                fileAgeSeconds(workerCheckpointPath(opt.dir, s.worker));
            const double alive = secondsSince(s.spawnedAt);
            const double quiet = age < 0.0 ? alive
                                           : std::min(age, alive);
            if (quiet > opt.stallTimeoutSeconds) {
                ::kill(s.pid, SIGKILL);
                ::waitpid(s.pid, &status, 0);
                s.pid = -1;
                restartOrDie(s, "stalled");
            }
        }
        if (remaining > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
    }

    // ---- validate + canonical merge -----------------------------------
    PopsweepResult result;
    result.sweep.sketches.assign(measures.size(),
                                 stats::SampleSketch(opt.sketchAlpha));
    result.sweep.telemetry.jobs = opt.jobsPerWorker;
    result.sweep.telemetry.perVictimChunks = cfg.perVictimChunks;
    result.sweep.totalShards = total_shards;

    for (Slot &s : slots) {
        const std::string path =
            workerCheckpointPath(opt.dir, s.worker);
        auto records = loadCheckpointRecords(path, fingerprint,
                                             measures.size(),
                                             total_shards);
        if (records.size() != s.end - s.begin ||
            (!records.empty() && records.front().first != s.begin))
            fatal("popsweep: worker %d checkpoint %s holds %zu "
                  "records, expected shards [%zu, %zu)",
                  s.worker, path.c_str(), records.size(), s.begin,
                  s.end);
        for (auto &[index, rec] : records) {
            if (rec.sketches.size() != measures.size())
                fatal("popsweep: shard %zu record with %zu sketches, "
                      "expected %zu",
                      index, rec.sketches.size(), measures.size());
            for (std::size_t i = 0; i < measures.size(); ++i)
                result.sweep.sketches[i].merge(rec.sketches[i]);
            result.sweep.telemetry.shards.push_back(rec.report);
        }

        WorkerMeta meta;
        if (!readWorkerMeta(workerMetaPath(opt.dir, s.worker),
                            s.worker, &meta))
            fatal("popsweep: worker %d finished without a valid meta "
                  "sidecar",
                  s.worker);
        WorkerReport wr;
        wr.worker = s.worker;
        wr.shardBegin = s.begin;
        wr.shardEnd = s.end;
        wr.restarts = s.restarts;
        wr.peakRssBytes = meta.rssBytes;
        wr.wallSeconds = meta.wallSeconds;
        wr.resumedShards = meta.resumedShards;
        result.workers.push_back(wr);
        result.sweep.resumedShards += meta.resumedShards;
        result.aggregateRssBytes += meta.rssBytes;

        // Fold the worker's metrics into this process so a --metrics
        // run prints the whole fleet's counters; merge order across
        // workers cannot matter (integer sums), and the printout
        // itself is name-sorted.
        std::ifstream mf(workerMetricsPath(opt.dir, s.worker));
        if (mf) {
            std::stringstream buf;
            buf << mf.rdbuf();
            if (auto snap = obs::snapshotFromJson(buf.str()))
                obs::metrics().merge(*snap);
            else
                fatal("popsweep: worker %d wrote a malformed metrics "
                      "sidecar",
                      s.worker);
        }
    }

    result.sweep.telemetry.wallSeconds = secondsSince(wall_start);
    return result;
}

} // namespace pud::hammer
