#include "hammer/patterns.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace pud::hammer {

Program
doubleSidedRowHammer(BankId bank, RowId a1, RowId a2,
                     std::uint64_t hammers, const PatternTimings &t)
{
    Program p;
    if (hammers == 0)
        return p;
    p.loopBegin(hammers)
        .act(bank, a1, t.base.tRP)
        .pre(bank, t.aggOn())
        .act(bank, a2, t.base.tRP)
        .pre(bank, t.aggOn())
        .loopEnd();
    return p;
}

Program
singleSidedRowHammer(BankId bank, RowId aggressor, std::uint64_t hammers,
                     const PatternTimings &t)
{
    Program p;
    if (hammers == 0)
        return p;
    p.loopBegin(hammers)
        .act(bank, aggressor, t.base.tRP)
        .pre(bank, t.aggOn())
        .loopEnd();
    return p;
}

Program
comraHammer(BankId bank, RowId src, RowId dst, std::uint64_t hammers,
            const PatternTimings &t)
{
    Program p;
    if (hammers == 0)
        return p;
    p.loopBegin(hammers)
        .act(bank, src, t.base.tRP)
        .pre(bank, t.base.tRAS)
        .act(bank, dst, t.comraPreToAct)  // violated tRP: the copy
        .pre(bank, t.aggOn())
        .loopEnd();
    return p;
}

Program
simraHammer(BankId bank, RowId r1, RowId r2, std::uint64_t hammers,
            const PatternTimings &t)
{
    Program p;
    if (hammers == 0)
        return p;
    p.loopBegin(hammers)
        .act(bank, r1, t.base.tRP)
        .pre(bank, t.simraActToPre)      // violated tRAS
        .act(bank, r2, t.simraPreToAct)  // violated tRP: group opens
        .pre(bank, t.aggOn())
        .loopEnd();
    return p;
}

namespace {

void
appendLoop(Program &dst, const Program &src)
{
    // Pattern builders above produce self-contained programs; splice
    // their instructions (they share no data table entries).
    for (const auto &inst : src.insts()) {
        switch (inst.op) {
          case bender::Op::Act:
            dst.act(inst.bank, inst.row, inst.gap);
            break;
          case bender::Op::Pre:
            dst.pre(inst.bank, inst.gap);
            break;
          case bender::Op::LoopBegin:
            dst.loopBegin(inst.count);
            break;
          case bender::Op::LoopEnd:
            dst.loopEnd();
            break;
          default:
            panic("appendLoop: unexpected opcode");
        }
    }
}

} // namespace

Program
combinedPattern(BankId bank, RowId rh_a1, RowId rh_a2, RowId comra_src,
                RowId comra_dst, RowId simra_r1, RowId simra_r2,
                const CombinedCounts &counts, const PatternTimings &t)
{
    Program p;
    if (counts.comra > 0)
        appendLoop(p, comraHammer(bank, comra_src, comra_dst,
                                  counts.comra, t));
    if (counts.simra > 0)
        appendLoop(p, simraHammer(bank, simra_r1, simra_r2,
                                  counts.simra, t));
    if (counts.rowHammer > 0)
        appendLoop(p, doubleSidedRowHammer(bank, rh_a1, rh_a2,
                                           counts.rowHammer, t));
    return p;
}

Program
withRefInterleave(const Program &flat, const dram::TimingParams &t)
{
    // A tREFI that does not exceed the tRFC recovery would leave zero
    // budget for hammering between REFs; the old code silently clamped
    // to one body iteration per tREFI, hiding the misconfiguration.
    if (t.tREFI <= t.tRFC)
        fatal("withRefInterleave: tREFI (%lld ps) must exceed tRFC "
              "(%lld ps)",
              static_cast<long long>(t.tREFI),
              static_cast<long long>(t.tRFC));
    const auto &insts = flat.insts();
    Program p;
    std::size_t i = 0;
    while (i < insts.size()) {
        const auto &inst = insts[i];
        if (inst.op != bender::Op::LoopBegin) {
            switch (inst.op) {
              case bender::Op::Act:
                p.act(inst.bank, inst.row, inst.gap);
                break;
              case bender::Op::Pre:
                p.pre(inst.bank, inst.gap);
                break;
              case bender::Op::PreAll:
                p.preAll(inst.gap);
                break;
              case bender::Op::Ref:
                p.ref(inst.gap);
                break;
              case bender::Op::Nop:
                p.nop(inst.gap);
                break;
              default:
                fatal("withRefInterleave: unsupported top-level "
                      "opcode at instruction %zu", i);
            }
            ++i;
            continue;
        }

        // Validate the body is flat ACT/PRE and sum its duration.
        std::size_t close = i + 1;
        Time body_gap = 0;
        for (; close < insts.size() &&
               insts[close].op != bender::Op::LoopEnd;
             ++close) {
            switch (insts[close].op) {
              case bender::Op::Act:
              case bender::Op::Pre:
              case bender::Op::PreAll:
              case bender::Op::Nop:
                body_gap += insts[close].gap;
                break;
              default:
                fatal("withRefInterleave: loop body must be flat "
                      "ACT/PRE (instruction %zu)", close);
            }
        }
        if (close == insts.size())
            fatal("withRefInterleave: unbalanced loop at %zu", i);

        auto emit_body = [&] {
            for (std::size_t k = i + 1; k < close; ++k) {
                const auto &b = insts[k];
                switch (b.op) {
                  case bender::Op::Act:
                    p.act(b.bank, b.row, b.gap);
                    break;
                  case bender::Op::Pre:
                    p.pre(b.bank, b.gap);
                    break;
                  case bender::Op::PreAll:
                    p.preAll(b.gap);
                    break;
                  default:
                    p.nop(b.gap);
                    break;
                }
            }
        };

        // Iterations fitting one tREFI, after the tRFC REF recovery.
        const Time budget = t.tREFI > t.tRFC ? t.tREFI - t.tRFC : 0;
        const std::uint64_t per = std::max<std::uint64_t>(
            1, body_gap > 0
                   ? static_cast<std::uint64_t>(budget / body_gap)
                   : inst.count);
        const std::uint64_t outer = inst.count / per;
        const std::uint64_t rem = inst.count % per;

        if (outer > 0) {
            p.loopBegin(outer).loopBegin(per);
            emit_body();
            p.loopEnd().ref(t.tRP).nop(t.tRFC).loopEnd();
        }
        if (rem > 0) {
            p.loopBegin(rem);
            emit_body();
            p.loopEnd();
        }
        i = close + 1;
    }
    return p;
}

Program
trrBypassPattern(BankId bank, const std::vector<RowId> &aggressors,
                 RowId dummy, bool comra, std::uint64_t cycles,
                 const PatternTimings &t, int acts_per_trefi)
{
    if (aggressors.empty())
        fatal("trrBypassPattern: no aggressors");
    if (comra && aggressors.size() % 2 != 0)
        fatal("trrBypassPattern: CoMRA needs (src, dst) pairs");
    if (acts_per_trefi < (comra ? 2 : 1))
        fatal("trrBypassPattern: actsPerTrefi must be >= %d "
              "(got %d)",
              comra ? 2 : 1, acts_per_trefi);

    Program p;
    if (cycles == 0)
        return p;

    // Spacing that fits acts_per_trefi single-row activations (or
    // half as many copy cycles, which use two ACTs each) in one tREFI.
    const Time slot = t.base.tREFI / acts_per_trefi;
    const Time act_gap = std::max(t.base.tRP, slot - t.aggOn());
    const Time comra_gap =
        std::max(t.base.tRP, 2 * slot - t.base.tRAS -
                                 t.comraPreToAct - t.aggOn());

    // Units the aggressor phase walks: (src, dst) pairs for CoMRA,
    // single rows otherwise.
    const std::size_t units =
        comra ? aggressors.size() / 2 : aggressors.size();
    const std::size_t per_cycle = static_cast<std::size_t>(
        comra ? acts_per_trefi / 2 : acts_per_trefi);

    // The walk must carry across outer cycles: restarting at unit 0
    // every cycle would starve every unit past the first per_cycle
    // whenever units > per_cycle (and skew the distribution whenever
    // per_cycle % units != 0).  The rotation advances by
    // per_cycle % units each cycle and returns to its start after
    // `period` cycles, so unroll one full period into the loop body
    // and emit any leftover cycles flat after it; the leftover restarts
    // at offset 0 because the loop body spans whole periods.
    const std::size_t step = per_cycle % units;
    const std::size_t period =
        step == 0 ? 1 : units / std::gcd(units, step);

    const auto emit_cycle = [&](std::size_t cycle) {
        const std::size_t start = (cycle * per_cycle) % units;

        // Aggressor phase: acts_per_trefi ACTs spread over the
        // aggressor list within one tREFI, then a (potentially
        // TRR-capable) REF.
        if (comra) {
            for (std::size_t i = 0; i < per_cycle; ++i) {
                const std::size_t pair = ((start + i) % units) * 2;
                p.act(bank, aggressors[pair], comra_gap)
                    .pre(bank, t.base.tRAS)
                    .act(bank, aggressors[pair + 1], t.comraPreToAct)
                    .pre(bank, t.aggOn());
            }
        } else {
            for (std::size_t i = 0; i < per_cycle; ++i) {
                p.act(bank, aggressors[(start + i) % units], act_gap)
                    .pre(bank, t.aggOn());
            }
        }
        p.ref(t.base.tRP);

        // Dummy phase: three tREFIs of dummy-row hammering, each
        // ending with a REF, flooding the TRR sampler window.
        for (int trefi = 0; trefi < 3; ++trefi) {
            for (int i = 0; i < acts_per_trefi; ++i)
                p.act(bank, dummy, act_gap).pre(bank, t.aggOn());
            p.ref(t.base.tRP);
        }
    };

    const std::uint64_t outer = cycles / period;
    const std::uint64_t rem = cycles % period;
    if (outer > 0) {
        p.loopBegin(outer);
        for (std::size_t c = 0; c < period; ++c)
            emit_cycle(c);
        p.loopEnd();
    }
    for (std::uint64_t c = 0; c < rem; ++c)
        emit_cycle(static_cast<std::size_t>(c));
    return p;
}

Program
trrSimraPattern(BankId bank, RowId r1, RowId r2, std::uint64_t cycles,
                const PatternTimings &t, int acts_per_trefi)
{
    if (acts_per_trefi < 2)
        fatal("trrSimraPattern: actsPerTrefi must be >= 2 (got %d)",
              acts_per_trefi);
    Program p;
    if (cycles == 0)
        return p;
    const int ops_per_trefi = acts_per_trefi / 2;
    const Time slot = t.base.tREFI / ops_per_trefi;
    const Time op_gap = std::max(
        t.base.tRP,
        slot - t.simraActToPre - t.simraPreToAct - t.aggOn());

    p.loopBegin(cycles);
    for (int i = 0; i < ops_per_trefi; ++i) {
        p.act(bank, r1, op_gap)
            .pre(bank, t.simraActToPre)
            .act(bank, r2, t.simraPreToAct)
            .pre(bank, t.aggOn());
    }
    p.ref(t.base.tRP);
    p.loopEnd();
    return p;
}

} // namespace pud::hammer
