/**
 * @file
 * Access-pattern builders: every hammering pattern the paper uses,
 * expressed as a bender test program.
 *
 * Hammer-count conventions follow the paper exactly:
 *  - RowHammer / RowPress: one hammer = one activation per aggressor
 *    (a double-sided round activates each of the two aggressors once);
 *  - CoMRA: one hammer = one copy cycle (the ACT src + ACT dst pair);
 *  - SiMRA: one hammer = one ACT-PRE-ACT multi-row activation.
 */

#ifndef PUD_HAMMER_PATTERNS_H
#define PUD_HAMMER_PATTERNS_H

#include <cstdint>
#include <vector>

#include "bender/program.h"
#include "dram/timing.h"

namespace pud::hammer {

using bender::Program;
using dram::BankId;
using dram::RowId;

/** Timing knobs every pattern builder takes. */
struct PatternTimings
{
    dram::TimingParams base;

    /** Aggressor-on time (RowPress sweeps); defaults to tRAS. */
    Time tAggOn = 0;

    /** Violated PRE -> ACT dst gap of the CoMRA cycle (Fig. 9 sweep). */
    Time comraPreToAct = units::fromNs(7.5);

    /** SiMRA ACT -> PRE / PRE -> ACT gaps (Fig. 18 sweep). */
    Time simraActToPre = units::fromNs(3.0);
    Time simraPreToAct = units::fromNs(3.0);

    Time aggOn() const { return tAggOn > 0 ? tAggOn : base.tRAS; }
};

/**
 * Double-sided RowHammer / RowPress: alternately activate a1 and a2,
 * holding each open for tAggOn.  `hammers` activations per aggressor.
 */
Program doubleSidedRowHammer(BankId bank, RowId a1, RowId a2,
                             std::uint64_t hammers,
                             const PatternTimings &t);

/** Single-sided RowHammer / RowPress on one aggressor. */
Program singleSidedRowHammer(BankId bank, RowId aggressor,
                             std::uint64_t hammers,
                             const PatternTimings &t);

/**
 * One CoMRA copy cycle repeated `hammers` times:
 * ACT src, wait tRAS, PRE + ACT dst back-to-back with the violated
 * tRP, wait tAggOn, PRE.  Whether the attack is double- or
 * single-sided is purely a matter of where src and dst sit relative
 * to the victim (paper Fig. 3).
 */
Program comraHammer(BankId bank, RowId src, RowId dst,
                    std::uint64_t hammers, const PatternTimings &t);

/**
 * SiMRA hammering: ACT r1 - PRE - ACT r2 with both gaps violated,
 * opening the bit-combination row group, held for tAggOn, then PRE.
 */
Program simraHammer(BankId bank, RowId r1, RowId r2,
                    std::uint64_t hammers, const PatternTimings &t);

/**
 * Combined pattern (paper §6, Fig. 20): optional CoMRA phase, then an
 * optional SiMRA phase, then a RowHammer phase.  Zero-count phases are
 * omitted.
 */
struct CombinedCounts
{
    std::uint64_t comra = 0;
    std::uint64_t simra = 0;
    std::uint64_t rowHammer = 0;
};

Program combinedPattern(BankId bank, RowId rh_a1, RowId rh_a2,
                        RowId comra_src, RowId comra_dst, RowId simra_r1,
                        RowId simra_r2, const CombinedCounts &counts,
                        const PatternTimings &t);

/**
 * Rewrite a flat hammering pattern so nominal REF commands interleave
 * at the tREFI cadence, modelling a host that keeps refreshing while
 * the pattern runs (and giving TRR samplers mid-pattern refresh
 * opportunities).  Every top-level loop `loopBegin(n){body}` whose
 * body is flat ACT/PRE becomes
 *
 *   loopBegin(n / per) { loopBegin(per){body}  REF  (tRFC wait) }
 *   loopBegin(n % per) { body }
 *
 * with `per` = iterations fitting one tREFI after the tRFC recovery.
 * Top-level non-loop commands pass through unchanged; RD/WR anywhere
 * and nested loops are unsupported (fatal), as is a timing set with
 * `tREFI <= tRFC` (zero hammering budget between REFs).
 */
Program withRefInterleave(const Program &flat,
                          const dram::TimingParams &t);

/**
 * The U-TRR-style N-sided TRR bypass pattern (paper §7) for RowHammer
 * or CoMRA aggressors: per refresh-window cycle, spread
 * `actsPerTrefi` activations over the aggressor list within one tREFI
 * and issue a REF, then hammer the dummy row for three full tREFIs
 * (with REFs) so the sampler's window fills with the dummy address.
 *
 * For `comra == true` the aggressor list is walked in (src, dst) pairs
 * performing copy cycles instead of plain activations.
 *
 * The walk over the aggressor list carries across cycles: when the
 * list is longer than one tREFI's activation budget, cycle c resumes
 * where cycle c-1 stopped, so every aggressor is activated (the loop
 * body internally unrolls one full rotation period).  Rejects
 * `actsPerTrefi < 1` (`< 2` with `comra`) with a fatal diagnostic.
 */
Program trrBypassPattern(BankId bank, const std::vector<RowId> &aggressors,
                         RowId dummy, bool comra, std::uint64_t cycles,
                         const PatternTimings &t, int actsPerTrefi = 156);

/**
 * SiMRA under TRR (paper §7): per tREFI, issue `actsPerTrefi / 2`
 * SiMRA operations (each consumes two ACT commands), then a REF.
 * Rejects `actsPerTrefi < 2` with a fatal diagnostic.
 */
Program trrSimraPattern(BankId bank, RowId r1, RowId r2,
                        std::uint64_t cycles, const PatternTimings &t,
                        int actsPerTrefi = 156);

} // namespace pud::hammer

#endif // PUD_HAMMER_PATTERNS_H
