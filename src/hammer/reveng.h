/**
 * @file
 * Reverse-engineering algorithms (paper §3.2, §4.2, §5.2): in-DRAM
 * row mapping, subarray boundaries, and SiMRA row groups, all
 * recovered blindly through the command interface exactly as the real
 * methodology does.
 */

#ifndef PUD_HAMMER_REVENG_H
#define PUD_HAMMER_REVENG_H

#include <vector>

#include "dram/mapping.h"
#include "hammer/tester.h"

namespace pud::hammer {

/**
 * Find the physical disturbance neighbours of a logical row by
 * hammering it single-sided with a long t_AggOn (RowPress amplifies
 * the coupling enough to flip even strong rows within the budget) and
 * scanning a logical window for bitflips.
 *
 * @return logical rows that experienced bitflips
 */
std::vector<RowId> findDisturbanceNeighbors(ModuleTester &tester,
                                            BankId bank,
                                            RowId logical_aggressor,
                                            std::uint64_t hammers = 400000,
                                            RowId window = 8);

/**
 * Identify the module's logical-to-physical row mapping scheme by
 * comparing measured disturbance-neighbour sets of sample rows
 * against each candidate scheme's predictions.
 */
dram::MappingScheme identifyMappingScheme(ModuleTester &tester,
                                          BankId bank);

/** Try one RowClone copy; true if dst received src's content. */
bool rowCloneWorks(ModuleTester &tester, BankId bank, RowId src_logical,
                   RowId dst_logical);

/**
 * Recover subarray boundaries: RowClone succeeds only within one
 * subarray, so scanning consecutive row pairs locates the boundaries
 * (paper §4.2).  Returns the first logical row of every subarray.
 */
std::vector<RowId> findSubarrayBoundaries(ModuleTester &tester,
                                          BankId bank);

/**
 * Discover which rows an ACT-PRE-ACT pair simultaneously activates
 * (paper §5.2): issue the sequence followed by a WR marker and scan
 * the subarray for rows that received the marker.
 *
 * @return logical rows in the activated group (sorted)
 */
std::vector<RowId> discoverSimraGroup(ModuleTester &tester, BankId bank,
                                      RowId r1_logical, RowId r2_logical);

/**
 * Detect an in-DRAM TRR mechanism (paper §7 methodology, simplified
 * from U-TRR): profile a weak victim's HC_first with refresh
 * disabled, then hammer it well past that threshold at the nominal
 * pace (156 ACTs per tREFI with periodic REF).  The run is far
 * shorter than the victim's own periodic-refresh interval, so only a
 * targeted victim refresh -- i.e. TRR -- can prevent the bitflip.
 *
 * @return true if a TRR-like mechanism intervened
 */
bool detectTrr(ModuleTester &tester, BankId bank);

} // namespace pud::hammer

#endif // PUD_HAMMER_REVENG_H
