/**
 * @file
 * Reproduces Fig. 9: double-sided CoMRA HC_first for violated
 * PRE -> ACT dst gaps of 7.5 / 9 / 10.5 / 12 ns.
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("CoMRA PRE->ACT delay sweep", "paper Fig. 9, Obs. 8");

    for (auto mfr : kAllMfrs) {
        const auto &family = representative(mfr);
        Table table(boxHeader("PRE->ACT gap"));
        double first_mean = 0, last_mean = 0;
        for (double gap_ns : {7.5, 9.0, 10.5, 12.0}) {
            ModuleTester::Options opt;
            opt.searchWcdp = true;
            opt.timings.comraPreToAct = units::fromNs(gap_ns);
            auto series = runPopulation(
                populationFor(family, scale),
                {[&](ModuleTester &t, dram::RowId v) {
                    return t.comraDouble(v, opt);
                }});
            series = hammer::dropIncomplete(series);
            char label[16];
            std::snprintf(label, sizeof(label), "%.1fns", gap_ns);
            table.addRow(boxRow(label, series[0]));
            const double mean = stats::boxStats(series[0]).mean;
            if (gap_ns == 7.5)
                first_mean = mean;
            if (gap_ns == 12.0)
                last_mean = mean;
        }
        std::printf("\n%s (%s):\n", name(mfr),
                    family.moduleId.c_str());
        table.print();
        const double paper =
            mfr == dram::Manufacturer::SKHynix   ? 3.10
            : mfr == dram::Manufacturer::Micron  ? 1.18
            : mfr == dram::Manufacturer::Samsung ? 1.17
                                                 : 3.01;
        std::printf("mean HC_first increase 7.5ns -> 12ns: %.2fx "
                    "(paper: %.2fx)\n",
                    last_mean / first_mean, paper);
    }
    return 0;
}
