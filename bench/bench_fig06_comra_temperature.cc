/**
 * @file
 * Reproduces Fig. 6: HC_first distribution of double-sided CoMRA at
 * 50/60/70/80C per manufacturer.
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("CoMRA temperature sweep", "paper Fig. 6, Obs. 4");

    for (auto mfr : kAllMfrs) {
        const auto &family = representative(mfr);
        Table table(boxHeader("temperature"));
        double mean50 = 0, mean80 = 0;
        for (double temp : {50.0, 60.0, 70.0, 80.0}) {
            ModuleTester::Options opt;
            opt.searchWcdp = true;
            auto series = runPopulation(
                populationFor(family, scale),
                {[&](ModuleTester &t, dram::RowId v) {
                    t.bench().thermo().setTarget(temp);
                    return t.comraDouble(v, opt);
                }});
            series = hammer::dropIncomplete(series);
            char label[16];
            std::snprintf(label, sizeof(label), "%.0fC", temp);
            table.addRow(boxRow(label, series[0]));
            const double mean = stats::boxStats(series[0]).mean;
            if (temp == 50.0)
                mean50 = mean;
            if (temp == 80.0)
                mean80 = mean;
        }
        std::printf("\n%s (%s):\n", name(mfr),
                    family.moduleId.c_str());
        table.print();
        std::printf("mean HC_first 50C/80C ratio: %.2fx "
                    "(paper trend: %s)\n",
                    mean50 / mean80,
                    mfr == dram::Manufacturer::Micron
                        ? "inverted, ~1.14x the other way"
                        : "hotter is worse");
    }
    return 0;
}
