/**
 * @file
 * Reproduces Fig. 23: combining RowHammer with CoMRA *and* SiMRA --
 * the most effective combined access pattern (Obs. 24: up to 1.66x
 * mean HC_first reduction vs RowHammer alone).
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("combined RowHammer + CoMRA + SiMRA",
           "paper Fig. 23, Obs. 24");

    const auto &family = representative(dram::Manufacturer::SKHynix);
    ModuleTester::Options opt;
    opt.searchWcdp = !args.has("no-wcdp");
    // --refresh interleaves nominal REFs at the tREFI cadence into
    // every probe; the generalized fast-path keeps this cheap.
    opt.refreshInterleave = args.has("refresh");

    std::vector<MeasureFn> measures = {
        [&](ModuleTester &t, dram::RowId v) {
            return t.rhDouble(v, opt);
        }};
    for (double frac : {0.1, 0.5, 0.9}) {
        measures.push_back([&opt, frac](ModuleTester &t,
                                        dram::RowId v) {
            ModuleTester::CombinedSpec spec;
            spec.comraFraction = frac;
            spec.simraFraction = frac;
            spec.simraN = 4;
            return t.combinedRh(v, spec, opt);
        });
    }
    auto series = runPopulation(
        populationFor(family, scale, /*odd_only=*/true), measures);
    series = hammer::dropIncomplete(series);

    Table table({"pre-hammer fraction", "victims", "%lower",
                 "mean reduction x"});
    const char *labels[3] = {"10%", "50%", "90%"};
    double best = 0.0;
    for (int i = 0; i < 3; ++i) {
        const auto &rh = series[0];
        const auto &combined = series[i + 1];
        int lower = 0;
        std::vector<double> ratios;
        for (std::size_t k = 0; k < rh.size(); ++k) {
            lower += combined[k] < rh[k];
            ratios.push_back(rh[k] / std::max(1.0, combined[k]));
        }
        const double mean_reduction = stats::geomean(ratios);
        best = std::max(best, mean_reduction);
        table.addRow(
            {labels[i], Table::count((long long)rh.size()),
             Table::num(100.0 * lower /
                            std::max<std::size_t>(1, rh.size()),
                        1),
             Table::num(mean_reduction, 2)});
    }
    table.print();
    std::printf("\nBest mean reduction: %.2fx (paper: 1.66x; the "
                "triple combination is the strongest tested access "
                "pattern).\n",
                best);
    return 0;
}
