/**
 * @file
 * Reproduces Fig. 7: single-sided CoMRA vs single-sided RowHammer vs
 * far double-sided RowHammer (same access pattern as single-sided
 * CoMRA but with a nominal tRP).
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("single-sided CoMRA vs RowHammer",
           "paper Fig. 7, Obs. 5");

    for (auto mfr : kAllMfrs) {
        const auto &family = representative(mfr);
        ModuleTester::Options opt;
        opt.searchWcdp = true;
        opt.search.maxHammers = 2000000;  // single-sided needs more

        auto series = runPopulation(
            populationFor(family, scale),
            {[&](ModuleTester &t, dram::RowId v) {
                 return t.comraSingle(v, opt);
             },
             [&](ModuleTester &t, dram::RowId v) {
                 return t.rhSingle(v, opt);
             },
             [&](ModuleTester &t, dram::RowId v) {
                 return t.farDouble(v, opt);
             }});
        series = hammer::dropIncomplete(series);

        Table table(boxHeader("technique"));
        table.addRow(boxRow("single-sided CoMRA", series[0]));
        table.addRow(boxRow("single-sided RowHammer", series[1]));
        table.addRow(boxRow("far double-sided RowHammer", series[2]));
        std::printf("\n%s (%s):\n", name(mfr),
                    family.moduleId.c_str());
        table.print();

        const double co = stats::boxStats(series[0]).min;
        const double ss = stats::boxStats(series[1]).min;
        const double fd = stats::boxStats(series[2]).min;
        std::printf("lowest HC_first: ss-CoMRA %.0f is %.2fx lower "
                    "than ss-RH and %.2fx vs far-ds-RH "
                    "(paper, SK Hynix: 1.42x and 1.02x)\n",
                    co, ss / co, fd / co);
    }
    return 0;
}
