/**
 * @file
 * Reproduces Fig. 24: bitflip counts for RowHammer, CoMRA, and SiMRA
 * with and without the in-DRAM TRR mechanism on the SK Hynix 8Gb
 * A-die module, using the U-TRR N-sided bypass pattern for
 * RowHammer/CoMRA and paced SiMRA ops for SiMRA.
 *
 * The measured patterns are REF-dense (a refresh per tREFI of
 * hammering), which the generalized executor fast-path now replays
 * arithmetically whenever the refresh stream stays clear of the
 * hammered rows; the TRR-off arms and profiling sweeps in particular
 * run orders of magnitude faster than naive execution.
 */

#include <optional>

#include "common.h"
#include "mitigation/countermeasures.h"

using namespace pud;
using namespace pud::bench;
using hammer::TrrConfig;
using hammer::TrrTechnique;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);

    // --mitigation selects what the "with" arm runs: the device's
    // native REF-driven TRR sampler (default), or a close-driven
    // PRAC / PARA / Graphene hook (mitigation/countermeasures.h) with
    // TRR off -- the same hammer budgets measured against a different
    // defense.
    const std::string mech = args.get("mitigation", "trr");
    if (mech != "trr" && mech != "prac" && mech != "para" &&
        mech != "graphene") {
        fatal("--mitigation=%s: expected trr, prac, para, or graphene",
              mech.c_str());
    }
    banner("PuDHammer vs in-DRAM TRR", "paper Fig. 24, Obs. 25-26");

    const auto &family = representative(dram::Manufacturer::SKHynix);
    const int iterations =
        static_cast<int>(args.getInt("iterations", 3));
    const std::uint64_t hammers = static_cast<std::uint64_t>(
        args.getInt("hammers", args.has("full") ? 500000 : 120000));

    struct Config
    {
        TrrTechnique tech;
        int param;  // nSided or simraN
        const char *label;
    };
    // The paper sweeps N = 1..10 for the N-sided RowHammer/CoMRA
    // patterns; the default run covers the corners and --full the
    // whole sweep.
    std::vector<Config> configs = {
        {TrrTechnique::RowHammer, 2, "RowHammer 2-sided"},
        {TrrTechnique::RowHammer, 4, "RowHammer 4-sided"},
        {TrrTechnique::Comra, 2, "CoMRA 2-sided"},
        {TrrTechnique::Comra, 4, "CoMRA 4-sided"},
        {TrrTechnique::Simra, 2, "SiMRA-2"},
        {TrrTechnique::Simra, 4, "SiMRA-4"},
        {TrrTechnique::Simra, 8, "SiMRA-8"},
        {TrrTechnique::Simra, 16, "SiMRA-16"},
        {TrrTechnique::Simra, 32, "SiMRA-32"},
    };
    if (args.has("full")) {
        static std::vector<std::string> labels;
        labels.reserve(8);  // keep c_str() pointers stable
        for (int n : {1, 3, 5, 6, 7, 8, 9, 10}) {
            labels.push_back("RowHammer " + std::to_string(n) +
                             "-sided");
            configs.push_back({TrrTechnique::RowHammer, n,
                               labels.back().c_str()});
        }
    }

    const std::string col_without =
        "w/o " + mech + " avg [min,max]";
    const std::string col_with = "w/ " + mech + " avg [min,max]";
    const std::string col_red = mech + " reduction %";
    Table table({"technique", col_without, col_with, col_red,
                 "dropped"});

    double rh_with_trr = 0.0, best_simra_with_trr = 0.0,
           comra_with_trr = 0.0;

    // Every (config, iteration, trr) cell builds a fresh tester, so
    // the configs are independent shards under --jobs; accumulators
    // land in per-config slots and rows render in fixed order below.
    struct ConfigResult
    {
        stats::Accumulator without, with;
    };
    std::vector<ConfigResult> results(configs.size());
    exec::parallelFor(scale.jobs, configs.size(), [&](std::size_t ci) {
        const Config &c = configs[ci];
        for (int it = 0; it < iterations; ++it) {
            TrrConfig cfg;
            cfg.nSided = c.param;
            cfg.simraN = c.param;
            cfg.hammersPerAggressor = hammers;
            for (bool armed : {false, true}) {
                dram::DeviceConfig dev_cfg = dram::makeConfig(
                    family.moduleId, scale.seed + it);
                dev_cfg.rowsPerSubarray = scale.rowsPerSubarray;
                ModuleTester tester(dev_cfg);

                // The "with" arm of a non-TRR mechanism keeps the
                // native sampler off and attaches the hook instead.
                std::optional<mitigation::PracMitigation> prac;
                std::optional<mitigation::ParaMitigation> para;
                std::optional<mitigation::GrapheneMitigation> graphene;
                dram::MitigationHook *hook = nullptr;
                if (armed && mech == "prac") {
                    hook = &prac.emplace(mitigation::PracConfig{},
                                         dev_cfg.banks,
                                         dev_cfg.rowsPerBank(),
                                         dev_cfg.rowsPerSubarray);
                } else if (armed && mech == "para") {
                    hook = &para.emplace(mitigation::ParaConfig{},
                                         dev_cfg.rowsPerSubarray);
                } else if (armed && mech == "graphene") {
                    hook = &graphene.emplace(
                        mitigation::GrapheneConfig{}, dev_cfg.banks,
                        dev_cfg.rowsPerSubarray);
                }

                const auto flips = runTrrExperiment(
                    tester, c.tech, cfg, armed && mech == "trr", hook);
                (armed ? results[ci].with : results[ci].without)
                    .add(static_cast<double>(flips));
            }
        }
    });

    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
        const Config &c = configs[ci];
        const stats::Accumulator &without = results[ci].without;
        const stats::Accumulator &with = results[ci].with;
        char a[64], b[64];
        std::snprintf(a, sizeof(a), "%.1f [%.0f, %.0f]",
                      without.mean(), without.min(), without.max());
        std::snprintf(b, sizeof(b), "%.1f [%.0f, %.0f]",
                      with.mean(), with.min(), with.max());
        const double reduction =
            without.mean() > 0
                ? 100.0 * (1.0 - with.mean() / without.mean())
                : 0.0;
        // Non-finite samples the accumulators refused to ingest; a
        // nonzero count means a measurement diverged and the averages
        // cover fewer than `iterations` runs.
        table.addRow({c.label, a, b, Table::num(reduction, 2),
                      Table::count(static_cast<long long>(
                          without.dropped() + with.dropped()))});

        if (c.tech == TrrTechnique::RowHammer && c.param == 2)
            rh_with_trr = with.mean();
        if (c.tech == TrrTechnique::Comra && c.param == 2)
            comra_with_trr = with.mean();
        if (c.tech == TrrTechnique::Simra)
            best_simra_with_trr =
                std::max(best_simra_with_trr, with.mean());
    }

    table.print();
    const double denom = std::max(0.5, rh_with_trr);
    if (mech == "trr") {
        std::printf("\nWith TRR enabled, the best SiMRA config induces "
                    "%.0fx more bitflips than 2-sided RowHammer and "
                    "CoMRA %.2fx (paper: 11340x and 1.10x; exact "
                    "ratios depend on how close RowHammer gets to "
                    "zero).\n",
                    best_simra_with_trr / denom,
                    comra_with_trr / denom);
    } else {
        std::printf("\nWith %s armed, the best SiMRA config induces "
                    "%.0fx more bitflips than 2-sided RowHammer and "
                    "CoMRA %.2fx.\n",
                    mech.c_str(), best_simra_with_trr / denom,
                    comra_with_trr / denom);
    }
    return 0;
}
