/**
 * @file
 * Shared scaffolding for the bench binaries that regenerate the
 * paper's tables and figures.
 *
 * Every bench accepts the same scale knobs so users can trade runtime
 * for population size:
 *   --victims=N   victims sampled per subarray (default 8)
 *   --modules=N   cap on module instances per family (default 2)
 *   --rows=N      rows per subarray (default 128, power of two)
 *   --seed=N      master seed (default 1)
 *   --fast        minimal population for smoke runs
 *   --full        paper-scale population (slow)
 */

#ifndef PUD_BENCH_COMMON_H
#define PUD_BENCH_COMMON_H

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "hammer/experiment.h"
#include "stats/summary.h"
#include "util/args.h"
#include "util/table.h"

namespace pud::bench {

using hammer::kNoFlip;
using hammer::MeasureFn;
using hammer::ModuleTester;
using hammer::PopulationConfig;

/** Scale knobs common to all benches. */
struct Scale
{
    dram::RowId victims = 8;
    int modulesCap = 2;
    dram::RowId rowsPerSubarray = 128;
    std::uint64_t seed = 1;

    static Scale
    parse(const Args &args)
    {
        Scale s;
        if (args.has("fast")) {
            s.victims = 4;
            s.modulesCap = 1;
        }
        if (args.has("full")) {
            s.victims = 1024;  // clamped to the subarray interior
            s.modulesCap = 64;  // clamped to Table 2 module counts
            s.rowsPerSubarray = 512;
        }
        s.victims = static_cast<dram::RowId>(
            args.getInt("victims", static_cast<long>(s.victims)));
        s.modulesCap = static_cast<int>(
            args.getInt("modules", s.modulesCap));
        s.rowsPerSubarray = static_cast<dram::RowId>(
            args.getInt("rows", static_cast<long>(s.rowsPerSubarray)));
        s.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
        return s;
    }
};

/** Population config for one Table 2 family under the scale knobs. */
inline PopulationConfig
populationFor(const dram::FamilyProfile &family, const Scale &scale,
              bool odd_only = false)
{
    PopulationConfig cfg;
    cfg.moduleId = family.moduleId;
    cfg.modules = std::min(family.numModules, scale.modulesCap);
    cfg.victimsPerSubarray = scale.victims;
    cfg.oddOnly = odd_only;
    cfg.seed = scale.seed;
    cfg.rowsPerSubarray = scale.rowsPerSubarray;
    return cfg;
}

/**
 * The representative family per manufacturer used for the detailed
 * per-figure sweeps (the paper's SiMRA sections use the SK Hynix
 * 8Gb A-die module, which is also the TRR experiment's DUT).
 */
inline const dram::FamilyProfile &
representative(dram::Manufacturer mfr)
{
    switch (mfr) {
      case dram::Manufacturer::SKHynix:
        return dram::findFamily("HMA81GU7AFR8N-UH");
      case dram::Manufacturer::Micron:
        return dram::findFamily("MTA18ASF4G72HZ-3G2F1");
      case dram::Manufacturer::Samsung:
        return dram::findFamily("M391A2G43BB2-CWE");
      case dram::Manufacturer::Nanya:
        return dram::findFamily("KVR24N17S8/8");
    }
    return dram::table2Families().front();
}

constexpr dram::Manufacturer kAllMfrs[] = {
    dram::Manufacturer::SKHynix,
    dram::Manufacturer::Micron,
    dram::Manufacturer::Samsung,
    dram::Manufacturer::Nanya,
};

/** Render a BoxStats sample set as a table row. */
inline std::vector<std::string>
boxRow(const std::string &label, const std::vector<double> &samples)
{
    const auto bs = stats::boxStats(samples);
    return {label,
            Table::count(static_cast<long long>(bs.count)),
            Table::num(bs.min, 0),
            Table::num(bs.q1, 0),
            Table::num(bs.median, 0),
            Table::num(bs.q3, 0),
            Table::num(bs.max, 0),
            Table::num(bs.mean, 1)};
}

inline std::vector<std::string>
boxHeader(const std::string &first)
{
    return {first, "n", "min", "q1", "median", "q3", "max", "mean"};
}

/** Standard header line for a bench. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("=== PuDHammer reproduction: %s (%s) ===\n", what,
                paper_ref);
}

} // namespace pud::bench

#endif // PUD_BENCH_COMMON_H
