/**
 * @file
 * Shared scaffolding for the bench binaries that regenerate the
 * paper's tables and figures.
 *
 * Every bench accepts the same scale knobs so users can trade runtime
 * for population size:
 *   --victims=N   victims sampled per subarray (default 8)
 *   --modules=N   cap on module instances per family (default 2)
 *   --rows=N      rows per subarray (default 128, power of two)
 *   --seed=N      master seed (default 1)
 *   --jobs=N      worker threads for population sweeps (default: all
 *                 hardware threads; --jobs=1 is the legacy serial path)
 *   --fast        minimal population for smoke runs
 *   --full        paper-scale population (slow)
 *
 * Observability (pud::obs):
 *   --trace=FILE  structured JSONL event trace (wall-clock timing;
 *                 NOT expected to be identical across --jobs values)
 *   --metrics     deterministic counters/histograms printed to stdout
 *                 at exit (byte-identical for every --jobs value)
 *
 * Determinism guarantee: --jobs only changes wall-clock time, never
 * results.  Population sweeps shard at module granularity (each shard
 * owns its identically-seeded ModuleTester, replaying the serial
 * per-module loop verbatim) and every measurement lands in a pre-sized
 * slot keyed by (module, victim, measure), so stdout is byte-identical
 * for every --jobs value.  Per-shard wall time and work-unit counts
 * are reported on stderr at bench exit.
 */

#ifndef PUD_BENCH_COMMON_H
#define PUD_BENCH_COMMON_H

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exec/pool.h"
#include "hammer/experiment.h"
#include "obs/obs.h"
#include "stats/summary.h"
#include "util/args.h"
#include "util/table.h"

namespace pud::bench {

using hammer::kNoFlip;
using hammer::MeasureFn;
using hammer::ModuleTester;
using hammer::PopulationConfig;

/** Scale knobs common to all benches. */
struct Scale
{
    dram::RowId victims = 8;
    int modulesCap = 2;
    dram::RowId rowsPerSubarray = 128;
    std::uint64_t seed = 1;

    /** Worker threads; resolved (<=0 means hardware concurrency). */
    int jobs = 1;

    static Scale
    parse(const Args &args)
    {
        // Every bench parses its scale here, so this is the one spot
        // that gives all fig* binaries --trace/--metrics for free.
        obs::initFromArgs(args);
        Scale s;
        if (args.has("fast")) {
            s.victims = 4;
            s.modulesCap = 1;
        }
        if (args.has("full")) {
            s.victims = 1024;  // clamped to the subarray interior
            s.modulesCap = 64;  // clamped to Table 2 module counts
            s.rowsPerSubarray = 512;
        }
        s.victims = static_cast<dram::RowId>(
            args.getInt("victims", static_cast<long>(s.victims)));
        s.modulesCap = static_cast<int>(
            args.getInt("modules", s.modulesCap));
        s.rowsPerSubarray = static_cast<dram::RowId>(
            args.getInt("rows", static_cast<long>(s.rowsPerSubarray)));
        s.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
        s.jobs = exec::resolveJobs(
            static_cast<int>(args.getInt("jobs", 0)));
        return s;
    }
};

/**
 * Collects PopulationTelemetry across a bench run and prints the
 * per-shard wall-time / work-unit summary at process exit.  Printing
 * goes to stderr so stdout (the tables) stays byte-identical across
 * --jobs values.
 */
class JobsSummary
{
  public:
    static JobsSummary &
    instance()
    {
        static JobsSummary s;
        return s;
    }

    void
    add(const hammer::PopulationTelemetry &t)
    {
        if (runs_.empty())
            std::atexit([] { JobsSummary::instance().print(); });
        runs_.push_back(t);
    }

    void
    print() const
    {
        if (runs_.empty())
            return;
        double wall = 0.0, busy = 0.0;
        std::size_t units = 0;
        for (const auto &t : runs_) {
            wall += t.wallSeconds;
            busy += t.busySeconds();
            units += t.workUnits();
        }
        std::fprintf(stderr,
                     "--- pud::exec summary: %zu population sweep(s), "
                     "jobs=%d ---\n",
                     runs_.size(), runs_.front().jobs);
        for (std::size_t r = 0; r < runs_.size(); ++r) {
            const auto &t = runs_[r];
            std::fprintf(stderr,
                         "sweep %2zu: %3zu shard(s), %5zu work units, "
                         "wall %7.2f s, busy %7.2f s (%.2fx)\n",
                         r + 1, t.shards.size(), t.workUnits(),
                         t.wallSeconds, t.busySeconds(),
                         t.wallSeconds > 0.0
                             ? t.busySeconds() / t.wallSeconds
                             : 0.0);
            for (const auto &s : t.shards) {
                std::fprintf(stderr,
                             "  shard module=%-3d slots=[%zu,%zu) "
                             "units=%-4zu %.3f s\n",
                             s.module, s.firstSlot,
                             s.firstSlot + s.victims, s.workUnits,
                             s.seconds);
            }
        }
        std::fprintf(stderr,
                     "total: %zu work units, wall %.2f s, busy %.2f s "
                     "(parallel speedup %.2fx)\n",
                     units, wall, busy, wall > 0.0 ? busy / wall : 0.0);
        std::uint64_t fast_iters = 0, hits = 0, misses = 0;
        for (const auto &t : runs_) {
            fast_iters += t.fastPathIterations();
            hits += t.planCacheHits();
            misses += t.planCacheMisses();
        }
        std::fprintf(stderr,
                     "executor: %llu fastPathIterations, "
                     "%llu planCacheHits, %llu planCacheMisses\n",
                     static_cast<unsigned long long>(fast_iters),
                     static_cast<unsigned long long>(hits),
                     static_cast<unsigned long long>(misses));
    }

  private:
    std::vector<hammer::PopulationTelemetry> runs_;
};

/**
 * measurePopulation with bench telemetry: shard timings feed the
 * exit-time pud::exec summary.  All benches route their population
 * sweeps through this wrapper.
 */
inline std::vector<std::vector<double>>
runPopulation(const PopulationConfig &cfg,
              const std::vector<MeasureFn> &measures)
{
    hammer::PopulationTelemetry telemetry;
    auto series = hammer::measurePopulation(cfg, measures, &telemetry);
    JobsSummary::instance().add(telemetry);
    return series;
}

/** Population config for one Table 2 family under the scale knobs. */
inline PopulationConfig
populationFor(const dram::FamilyProfile &family, const Scale &scale,
              bool odd_only = false)
{
    PopulationConfig cfg;
    cfg.moduleId = family.moduleId;
    cfg.modules = std::min(family.numModules, scale.modulesCap);
    cfg.victimsPerSubarray = scale.victims;
    cfg.oddOnly = odd_only;
    cfg.seed = scale.seed;
    cfg.rowsPerSubarray = scale.rowsPerSubarray;
    cfg.jobs = scale.jobs;
    return cfg;
}

/**
 * The representative family per manufacturer used for the detailed
 * per-figure sweeps (the paper's SiMRA sections use the SK Hynix
 * 8Gb A-die module, which is also the TRR experiment's DUT).
 */
inline const dram::FamilyProfile &
representative(dram::Manufacturer mfr)
{
    switch (mfr) {
      case dram::Manufacturer::SKHynix:
        return dram::findFamily("HMA81GU7AFR8N-UH");
      case dram::Manufacturer::Micron:
        return dram::findFamily("MTA18ASF4G72HZ-3G2F1");
      case dram::Manufacturer::Samsung:
        return dram::findFamily("M391A2G43BB2-CWE");
      case dram::Manufacturer::Nanya:
        return dram::findFamily("KVR24N17S8/8");
    }
    return dram::table2Families().front();
}

constexpr dram::Manufacturer kAllMfrs[] = {
    dram::Manufacturer::SKHynix,
    dram::Manufacturer::Micron,
    dram::Manufacturer::Samsung,
    dram::Manufacturer::Nanya,
};

/** Render a BoxStats sample set as a table row. */
inline std::vector<std::string>
boxRow(const std::string &label, const std::vector<double> &samples)
{
    const auto bs = stats::boxStats(samples);
    return {label,
            Table::count(static_cast<long long>(bs.count)),
            Table::num(bs.min, 0),
            Table::num(bs.q1, 0),
            Table::num(bs.median, 0),
            Table::num(bs.q3, 0),
            Table::num(bs.max, 0),
            Table::num(bs.mean, 1)};
}

inline std::vector<std::string>
boxHeader(const std::string &first)
{
    return {first, "n", "min", "q1", "median", "q3", "max", "mean"};
}

/** Standard header line for a bench. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("=== PuDHammer reproduction: %s (%s) ===\n", what,
                paper_ref);
}

} // namespace pud::bench

#endif // PUD_BENCH_COMMON_H
