/**
 * @file
 * Reproduces Fig. 19: double-sided SiMRA HC_first by victim-row
 * subarray region, per number of simultaneously activated rows.
 */

#include <array>

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("SiMRA spatial variation", "paper Fig. 19, Obs. 21");

    const auto &family = representative(dram::Manufacturer::SKHynix);
    dram::DeviceConfig cfg =
        dram::makeConfig(family.moduleId, scale.seed);
    cfg.rowsPerSubarray = scale.rowsPerSubarray;

    // One shard per group size N, each with its own identically-seeded
    // tester (exactly the serial per-N loop body); output is rendered
    // afterwards in fixed N order, so --jobs never changes stdout.
    const int ns[] = {2, 4, 8, 16};
    constexpr std::size_t kSweeps = std::size(ns);
    std::array<std::array<std::vector<double>, dram::kNumRegions>,
               kSweeps>
        results;
    exec::parallelFor(scale.jobs, kSweeps, [&](std::size_t ni) {
        ModuleTester tester(cfg);
        const auto &model = tester.device().disturbModel();
        ModuleTester::Options opt;
        opt.pattern = dram::DataPattern::P00;

        for (dram::RowId v :
             tester.sampleVictims(scale.victims * 2, true)) {
            const auto hc = tester.simraDouble(v, ns[ni], opt);
            if (hc == kNoFlip)
                continue;
            results[ni][static_cast<std::size_t>(
                            model.regionOf(v))]
                .push_back(static_cast<double>(hc));
        }
    });

    for (std::size_t ni = 0; ni < kSweeps; ++ni) {
        const int n = ns[ni];
        const auto &by_region = results[ni];

        Table table(boxHeader("region"));
        int lowest_region = 0, highest_region = 0;
        double lo = 1e18, hi = 0;
        for (int r = 0; r < dram::kNumRegions; ++r) {
            table.addRow(boxRow(
                dram::name(static_cast<dram::Region>(r)),
                by_region[r]));
            const double mean = stats::boxStats(by_region[r]).mean;
            if (mean > 0 && mean < lo) {
                lo = mean;
                lowest_region = r;
            }
            if (mean > hi) {
                hi = mean;
                highest_region = r;
            }
        }
        std::printf("\nSiMRA-%d:\n", n);
        table.print();
        std::printf("highest mean HC_first region: %s; lowest: %s "
                    "(paper: N=4 highest at Beginning, N=8 highest "
                    "at End)\n",
                    dram::name(static_cast<dram::Region>(
                        highest_region)),
                    dram::name(static_cast<dram::Region>(
                        lowest_region)));
    }
    return 0;
}
