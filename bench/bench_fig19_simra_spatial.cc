/**
 * @file
 * Reproduces Fig. 19: double-sided SiMRA HC_first by victim-row
 * subarray region, per number of simultaneously activated rows.
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("SiMRA spatial variation", "paper Fig. 19, Obs. 21");

    const auto &family = representative(dram::Manufacturer::SKHynix);
    dram::DeviceConfig cfg =
        dram::makeConfig(family.moduleId, scale.seed);
    cfg.rowsPerSubarray = scale.rowsPerSubarray;

    for (int n : {2, 4, 8, 16}) {
        ModuleTester tester(cfg);
        const auto &model = tester.device().disturbModel();
        ModuleTester::Options opt;
        opt.pattern = dram::DataPattern::P00;

        std::vector<double> by_region[dram::kNumRegions];
        for (dram::RowId v :
             tester.sampleVictims(scale.victims * 2, true)) {
            const auto hc = tester.simraDouble(v, n, opt);
            if (hc == kNoFlip)
                continue;
            by_region[static_cast<int>(model.regionOf(v))].push_back(
                static_cast<double>(hc));
        }

        Table table(boxHeader("region"));
        int lowest_region = 0, highest_region = 0;
        double lo = 1e18, hi = 0;
        for (int r = 0; r < dram::kNumRegions; ++r) {
            table.addRow(boxRow(
                dram::name(static_cast<dram::Region>(r)),
                by_region[r]));
            const double mean = stats::boxStats(by_region[r]).mean;
            if (mean > 0 && mean < lo) {
                lo = mean;
                lowest_region = r;
            }
            if (mean > hi) {
                hi = mean;
                highest_region = r;
            }
        }
        std::printf("\nSiMRA-%d:\n", n);
        table.print();
        std::printf("highest mean HC_first region: %s; lowest: %s "
                    "(paper: N=4 highest at Beginning, N=8 highest "
                    "at End)\n",
                    dram::name(static_cast<dram::Region>(
                        highest_region)),
                    dram::name(static_cast<dram::Region>(
                        lowest_region)));
    }
    return 0;
}
