/**
 * @file
 * Reproduces Fig. 25: normalized weighted speedup of PRAC-PO-Naive
 * (RDT lowered to the SiMRA HC_first of 20) and PRAC-PO-WC (weighted
 * counting, SiMRA = 200 / CoMRA = 10 per op against the RowHammer
 * RDT) across PuD operation periods, over five-core multiprogrammed
 * mixes.
 *
 * This bench is analytic (sim::weightedSpeedup over per-mix traces);
 * it issues no device commands itself, but its companion figure
 * benches (21-24) now run their HC_first probes with the executor
 * loop fast-path on by default -- see EXPERIMENTS.md.
 */

#include <array>

#include "common.h"
#include "sim/system.h"

using namespace pud;
using namespace pud::bench;
using namespace pud::sim;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("PRAC-PO performance overhead", "paper Fig. 25, §8.2");

    const int mixes = static_cast<int>(
        args.getInt("mixes", args.has("full") ? 60 : 16));
    const double periods_ns[] = {125,  250,  500,   1000,
                                 2000, 4000, 8000, 16000};
    constexpr std::size_t kPeriods = std::size(periods_ns);

    Table table({"PuD period", "naive norm. WS", "WC norm. WS",
                 "naive ovh%", "WC ovh%"});

    double naive_sum = 0.0, wc_sum = 0.0;
    int cells = 0;

    // Each period's mix sweep is an independent simulation, so the
    // eight periods parallelize under --jobs; sums land in per-period
    // slots and rows render in fixed period order.
    struct PeriodResult
    {
        double base = 0, naive = 0, wc = 0;
    };
    std::array<PeriodResult, kPeriods> ws;
    exec::parallelFor(scale.jobs, kPeriods, [&](std::size_t pi) {
        const double period = periods_ns[pi];
        for (int m = 0; m < mixes; ++m) {
            const auto mix = makeMix(m);

            SystemConfig base;
            base.pudPeriod = units::fromNs(period);
            base.seed = static_cast<std::uint64_t>(m) + 1;
            ws[pi].base += weightedSpeedup(base, mix);

            SystemConfig naive = base;
            naive.pracEnabled = true;
            naive.prac.rdt = 20;
            ws[pi].naive += weightedSpeedup(naive, mix);

            SystemConfig wc = base;
            wc.pracEnabled = true;
            wc.prac.rdt = 4096;
            wc.prac.weighted = true;
            ws[pi].wc += weightedSpeedup(wc, mix);
        }
    });

    for (std::size_t pi = 0; pi < kPeriods; ++pi) {
        const double period = periods_ns[pi];
        const double naive_norm = ws[pi].naive / ws[pi].base;
        const double wc_norm = ws[pi].wc / ws[pi].base;
        naive_sum += 1.0 - naive_norm;
        wc_sum += 1.0 - wc_norm;
        ++cells;

        char label[24];
        std::snprintf(label, sizeof(label), "%.0f ns", period);
        table.addRow({label, Table::num(naive_norm, 3),
                      Table::num(wc_norm, 3),
                      Table::num(100.0 * (1.0 - naive_norm), 2),
                      Table::num(100.0 * (1.0 - wc_norm), 2)});
    }

    table.print();
    std::printf("\nAverage overhead across periods: PRAC-PO-Naive "
                "%.2f%%, PRAC-PO-WC %.2f%% (paper: WC averages "
                "48.26%%, max 98.83%%, and outperforms Naive at "
                "every tested intensity, e.g. 19.26%% vs 69.15%% at "
                "4us).\n",
                100.0 * naive_sum / cells, 100.0 * wc_sum / cells);
    return 0;
}
