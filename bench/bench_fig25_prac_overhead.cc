/**
 * @file
 * Reproduces Fig. 25: normalized weighted speedup of PRAC-PO-Naive
 * (RDT lowered to the SiMRA HC_first of 20) and PRAC-PO-WC (weighted
 * counting, SiMRA = 200 / CoMRA = 10 per op against the RowHammer
 * RDT) across PuD operation periods, over five-core multiprogrammed
 * mixes.
 */

#include "common.h"
#include "sim/system.h"

using namespace pud;
using namespace pud::bench;
using namespace pud::sim;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    banner("PRAC-PO performance overhead", "paper Fig. 25, §8.2");

    const int mixes = static_cast<int>(
        args.getInt("mixes", args.has("full") ? 60 : 16));
    const double periods_ns[] = {125,  250,  500,   1000,
                                 2000, 4000, 8000, 16000};

    Table table({"PuD period", "naive norm. WS", "WC norm. WS",
                 "naive ovh%", "WC ovh%"});

    double naive_sum = 0.0, wc_sum = 0.0;
    int cells = 0;

    for (double period : periods_ns) {
        double base_ws = 0, naive_ws = 0, wc_ws = 0;
        for (int m = 0; m < mixes; ++m) {
            const auto mix = makeMix(m);

            SystemConfig base;
            base.pudPeriod = units::fromNs(period);
            base.seed = static_cast<std::uint64_t>(m) + 1;
            base_ws += weightedSpeedup(base, mix);

            SystemConfig naive = base;
            naive.pracEnabled = true;
            naive.prac.rdt = 20;
            naive_ws += weightedSpeedup(naive, mix);

            SystemConfig wc = base;
            wc.pracEnabled = true;
            wc.prac.rdt = 4096;
            wc.prac.weighted = true;
            wc_ws += weightedSpeedup(wc, mix);
        }
        const double naive_norm = naive_ws / base_ws;
        const double wc_norm = wc_ws / base_ws;
        naive_sum += 1.0 - naive_norm;
        wc_sum += 1.0 - wc_norm;
        ++cells;

        char label[24];
        std::snprintf(label, sizeof(label), "%.0f ns", period);
        table.addRow({label, Table::num(naive_norm, 3),
                      Table::num(wc_norm, 3),
                      Table::num(100.0 * (1.0 - naive_norm), 2),
                      Table::num(100.0 * (1.0 - wc_norm), 2)});
    }

    table.print();
    std::printf("\nAverage overhead across periods: PRAC-PO-Naive "
                "%.2f%%, PRAC-PO-WC %.2f%% (paper: WC averages "
                "48.26%%, max 98.83%%, and outperforms Naive at "
                "every tested intensity, e.g. 19.26%% vs 69.15%% at "
                "4us).\n",
                100.0 * naive_sum / cells, 100.0 * wc_sum / cells);
    return 0;
}
