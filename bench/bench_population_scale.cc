/**
 * @file
 * Fleet-scale population sweep benchmark (ROADMAP item 4).
 *
 * Sweeps double-sided RowHammer HC_first over a population of module
 * instances using the streaming sweepPopulation pipeline -- lazy
 * weak-cell thresholds, geometry-only victim enumeration, per-shard
 * SampleSketches, arena-reused testers, shard-granular
 * checkpoint/resume -- and, with --workers=N, the multi-process
 * popsweep supervisor (hammer/popsweep.h).
 *
 * stdout is the deterministic fleet summary -- byte-identical across
 * --jobs and --workers values and across checkpoint/resume splits
 * (sketches merge in canonical shard order; no wall-clock values are
 * printed).  Wall time, throughput, and memory go to stderr and, as
 * JSON, to --json=FILE (default BENCH_population.json):
 *
 *   {
 *     "bench": "population_scale", "module_id": ..., "modules": N,
 *     "victims_per_module": V, "measures": M, "work_units": U,
 *     "shards": S, "resumed_shards": R, "jobs": J, "workers": W,
 *     "wall_seconds": T, "acts": A, "hammers_per_sec": A/T,
 *     "work_units_per_sec": U/T, "peak_rss_bytes": B,
 *     "aggregate_rss_bytes": B', "populated_rows_per_module_max": P,
 *     "scaling": [{"workers": n, "wall_seconds": t, "acts": a,
 *                  "hammers_per_sec": a/t,
 *                  "aggregate_rss_bytes": b}, ...]   // --scan-workers
 *     "eager_rss_bytes": E, "eager_modules": N'      // --eager-ablation
 *   }
 *
 * Memory accounting is multi-process honest: with --workers=N the
 * figure is the *sum* of every worker's self-reported getrusage peak
 * (RUSAGE_CHILDREN would report only the largest child), and the
 * supervisor's own RSS is reported separately.  The --eager-ablation
 * arm (materializeAllRows instead of lazy thresholds) runs in a forked
 * child so its high-water RSS can never leak into the measured phase's
 * ru_maxrss -- a peak is a process-lifetime maximum, so running the
 * ablation in-process first would silently inflate the lazy figure.
 *
 * Scale knobs beyond bench/common.h:
 *   --modules=N       module instances (default 10000)
 *   --victims=N       victims per subarray (default 1; 6 subarrays)
 *   --max-hammers=N   per-trial hammer budget (default 100000)
 *   --workers=N       worker processes (0 = in-process sweep, default)
 *   --dir=D           popsweep coordination dir (default JSON+".workdir")
 *   --scan-workers=L  comma list, e.g. 1,2,4,8: rerun at each worker
 *                     count, record a "scaling" array, and fail if any
 *                     rerun's merged sketch differs from the measured
 *                     run (the cross-process determinism contract)
 *   --checkpoint=F    checkpoint file for the in-process path
 *   --eager-ablation  measure the eager-materialization RSS in an
 *                     isolated child (--eager-modules=N, default 200)
 *   --json=F          perf record path (default BENCH_population.json)
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common.h"
#include "hammer/popsweep.h"

namespace {

using namespace pud;
using namespace pud::bench;

/** Peak resident set size in bytes (0 when unsupported). */
std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB
#endif
#else
    return 0;
#endif
}

void
printSketch(const char *label, const stats::SampleSketch &sk)
{
    std::printf("%-10s n=%llu dropped=%llu min=%.0f p25=%.0f "
                "p50=%.0f p75=%.0f max=%.0f mean=%.1f\n",
                label, static_cast<unsigned long long>(sk.count()),
                static_cast<unsigned long long>(sk.dropped()),
                sk.min(), sk.quantile(0.25), sk.quantile(0.50),
                sk.quantile(0.75), sk.max(), sk.mean());
}

/** One sweep execution, via either path, reduced to bench numbers. */
struct RunStats
{
    std::string sketch;        //!< serialized measure-0 fleet sketch
    double wallSeconds = 0.0;
    std::uint64_t acts = 0;
    std::size_t workUnits = 0;
    std::size_t resumedShards = 0;
    std::size_t totalShards = 0;
    std::size_t maxPopulatedRows = 0;
    std::uint64_t aggregateRssBytes = 0;  //!< summed worker peaks
    hammer::SweepResult sweep;
};

/**
 * Drop stale worker files so a scaling rerun measures real work
 * instead of resuming a finished directory from a previous bench run.
 */
void
clearPopsweepDir(const std::string &dir)
{
    for (int w = 0; w < 256; ++w) {
        const std::string base = dir + "/worker" + std::to_string(w);
        std::remove((base + ".ckpt").c_str());
        std::remove((base + ".meta").c_str());
        std::remove((base + ".metrics.json").c_str());
    }
}

RunStats
runSweep(const hammer::PopulationConfig &cfg,
         const std::vector<hammer::MeasureFn> &measures, int workers,
         int jobs, const std::string &dir,
         const std::string &checkpoint, bool fresh)
{
    RunStats out;
    if (workers <= 0) {
        hammer::SweepOptions opt;
        opt.checkpointPath = checkpoint;
        out.sweep = hammer::sweepPopulation(cfg, measures, opt);
        out.aggregateRssBytes = peakRssBytes();
    } else {
        hammer::PopsweepOptions opt;
        opt.dir = dir;
        opt.workers = workers;
        opt.jobsPerWorker = jobs;
        if (fresh)
            clearPopsweepDir(dir);
        const hammer::PopsweepResult r =
            hammer::popsweep(cfg, measures, opt);
        for (const hammer::WorkerReport &w : r.workers)
            std::fprintf(stderr,
                         "# worker %d: shards [%zu,%zu), restarts %d, "
                         "rss %.1f MiB, wall %.2f s, resumed %zu\n",
                         w.worker, w.shardBegin, w.shardEnd,
                         w.restarts,
                         static_cast<double>(w.peakRssBytes) /
                             (1024.0 * 1024.0),
                         w.wallSeconds, w.resumedShards);
        out.sweep = r.sweep;
        out.aggregateRssBytes = r.aggregateRssBytes;
    }
    out.sketch = out.sweep.sketches[0].serialize();
    out.wallSeconds = out.sweep.telemetry.wallSeconds;
    out.acts = out.sweep.telemetry.acts();
    out.workUnits = out.sweep.telemetry.workUnits();
    out.resumedShards = out.sweep.resumedShards;
    out.totalShards = out.sweep.totalShards;
    out.maxPopulatedRows = out.sweep.telemetry.maxPopulatedRows();
    return out;
}

/**
 * The eager-materialization ablation, isolated in a forked child: the
 * child repeats a (capped) sweep with every row materialized up front
 * and reports its peak RSS back over a pipe.  The parent's ru_maxrss
 * high-water mark is untouched, so the measured lazy figure stays
 * clean.  Returns 0 when unsupported or the child failed.
 */
std::uint64_t
eagerAblationRss(hammer::PopulationConfig cfg,
                 const std::vector<hammer::MeasureFn> &measures,
                 int eager_modules)
{
#if defined(__unix__) || defined(__APPLE__)
    cfg.modules = std::min(cfg.modules, eager_modules);
    cfg.setup = [](hammer::ModuleTester &t) {
        t.device().materializeAllRows();
    };
    int fds[2];
    if (pipe(fds) != 0)
        return 0;
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid < 0) {
        close(fds[0]);
        close(fds[1]);
        return 0;
    }
    if (pid == 0) {
        close(fds[0]);
        hammer::sweepPopulation(cfg, measures);
        const std::uint64_t rss = peakRssBytes();
        ssize_t ignored = write(fds[1], &rss, sizeof rss);
        (void)ignored;
        close(fds[1]);
        _exit(0);
    }
    close(fds[1]);
    std::uint64_t rss = 0;
    if (read(fds[0], &rss, sizeof rss) != sizeof rss)
        rss = 0;
    close(fds[0]);
    int status = 0;
    waitpid(pid, &status, 0);
    return rss;
#else
    (void)cfg;
    (void)measures;
    (void)eager_modules;
    return 0;
#endif
}

std::vector<int>
parseWorkerList(const std::string &spec)
{
    std::vector<int> out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string tok =
            spec.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (!tok.empty())
            out.push_back(std::atoi(tok.c_str()));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    Scale scale = Scale::parse(args);

    hammer::PopulationConfig cfg;
    cfg.moduleId = args.get("module", "HMA81GU7AFR8N-UH");
    // Unlike the figure benches, the population bench does NOT cap the
    // instance count at the family's real module count: the whole
    // point is simulating fleets far beyond the paper's 316 chips.
    cfg.modules = static_cast<int>(args.getInt("modules", 10000));
    cfg.victimsPerSubarray =
        static_cast<dram::RowId>(args.getInt("victims", 1));
    cfg.rowsPerSubarray = scale.rowsPerSubarray;
    cfg.seed = scale.seed;
    cfg.jobs = scale.jobs;

    hammer::ModuleTester::Options opt;
    opt.search.maxHammers = static_cast<std::uint64_t>(
        args.getInt("max-hammers", 100000));

    const std::vector<hammer::MeasureFn> measures = {
        [&](hammer::ModuleTester &t, dram::RowId v) {
            return t.rhDouble(v, opt);
        }};

    const int workers =
        static_cast<int>(args.getInt("workers", 0));
    const std::string json_path =
        args.get("json", "BENCH_population.json");
    const std::string dir = args.get("dir", json_path + ".workdir");
    const std::vector<int> scan =
        parseWorkerList(args.get("scan-workers", ""));

#if defined(__unix__) || defined(__APPLE__)
    if (workers > 0 || !scan.empty())
        ::mkdir(dir.c_str(), 0755);  // parent of the per-run subdirs
#endif

    banner("fleet-scale population sweep", "ROADMAP item 4");
    std::printf("family %s, %d modules x %zu victims\n",
                cfg.moduleId.c_str(), cfg.modules,
                hammer::populationVictims(cfg).size());

    // ---- measured phase ----------------------------------------------
    const RunStats result =
        runSweep(cfg, measures, workers, scale.jobs, dir + "/main",
                 args.get("checkpoint", ""), /*fresh=*/false);

    printSketch("rh_double", result.sweep.sketches[0]);
    std::printf("sketch-bytes %zu buckets %zu\n",
                result.sketch.size(),
                result.sweep.sketches[0].buckets());

    // Capture the measured-phase memory figures *now*, before any
    // scaling rerun or ablation can raise this process's high-water
    // mark.
    const std::uint64_t self_rss = peakRssBytes();
    const std::uint64_t agg_rss = result.aggregateRssBytes;

    // ---- perf record (stderr + JSON; never stdout) -------------------
    const double wall = result.wallSeconds;
    const double hammers_per_sec =
        wall > 0.0 ? static_cast<double>(result.acts) / wall : 0.0;
    const double units_per_sec =
        wall > 0.0 ? static_cast<double>(result.workUnits) / wall
                   : 0.0;

    std::fprintf(stderr,
                 "perf: wall %.2f s, %" PRIu64 " acts (%.3g "
                 "hammers/s), %zu units (%.3g units/s), workers %d, "
                 "aggregate RSS %.1f MiB (self %.1f MiB), resumed "
                 "%zu/%zu shards, max %zu populated rows/module\n",
                 wall, result.acts, hammers_per_sec, result.workUnits,
                 units_per_sec, workers,
                 static_cast<double>(agg_rss) / (1024.0 * 1024.0),
                 static_cast<double>(self_rss) / (1024.0 * 1024.0),
                 result.resumedShards, result.totalShards,
                 result.maxPopulatedRows);

    // ---- worker-scaling sweep (--scan-workers) -----------------------
    struct ScalePoint
    {
        int workers;
        RunStats stats;
    };
    std::vector<ScalePoint> scaling;
    for (int n : scan) {
        if (n < 1)
            continue;
        const RunStats s =
            runSweep(cfg, measures, n, scale.jobs,
                     dir + "/scan_w" + std::to_string(n), "",
                     /*fresh=*/true);
        if (s.sketch != result.sketch) {
            std::fprintf(stderr,
                         "FAIL: workers=%d rerun produced a different "
                         "merged sketch -- cross-process determinism "
                         "contract violated\n",
                         n);
            return 1;
        }
        const double hps =
            s.wallSeconds > 0.0
                ? static_cast<double>(s.acts) / s.wallSeconds
                : 0.0;
        std::fprintf(stderr,
                     "scaling: workers=%d wall %.2f s (%.3g "
                     "hammers/s), aggregate RSS %.1f MiB\n",
                     n, s.wallSeconds, hps,
                     static_cast<double>(s.aggregateRssBytes) /
                         (1024.0 * 1024.0));
        scaling.push_back({n, s});
    }

    // ---- eager ablation (isolated child; see file comment) -----------
    std::uint64_t eager_rss = 0;
    const int eager_modules =
        static_cast<int>(args.getInt("eager-modules", 200));
    if (args.has("eager-ablation")) {
        eager_rss = eagerAblationRss(cfg, measures, eager_modules);
        std::fprintf(stderr,
                     "eager ablation: %.1f MiB peak RSS over %d "
                     "modules (lazy self: %.1f MiB)\n",
                     static_cast<double>(eager_rss) /
                         (1024.0 * 1024.0),
                     std::min(cfg.modules, eager_modules),
                     static_cast<double>(self_rss) /
                         (1024.0 * 1024.0));
    }

    if (FILE *f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"population_scale\",\n"
            "  \"module_id\": \"%s\",\n"
            "  \"modules\": %d,\n"
            "  \"victims_per_module\": %zu,\n"
            "  \"measures\": %zu,\n"
            "  \"work_units\": %zu,\n"
            "  \"shards\": %zu,\n"
            "  \"resumed_shards\": %zu,\n"
            "  \"jobs\": %d,\n"
            "  \"workers\": %d,\n"
            "  \"wall_seconds\": %.3f,\n"
            "  \"acts\": %" PRIu64 ",\n"
            "  \"hammers_per_sec\": %.1f,\n"
            "  \"work_units_per_sec\": %.3f,\n"
            "  \"peak_rss_bytes\": %" PRIu64 ",\n"
            "  \"aggregate_rss_bytes\": %" PRIu64 ",\n"
            "  \"populated_rows_per_module_max\": %zu",
            cfg.moduleId.c_str(), cfg.modules,
            result.workUnits /
                std::max<std::size_t>(
                    1, static_cast<std::size_t>(cfg.modules)),
            measures.size(), result.workUnits, result.totalShards,
            result.resumedShards, scale.jobs, workers, wall,
            result.acts, hammers_per_sec, units_per_sec, self_rss,
            agg_rss, result.maxPopulatedRows);
        if (!scaling.empty()) {
            std::fprintf(f, ",\n  \"scaling\": [");
            for (std::size_t i = 0; i < scaling.size(); ++i) {
                const ScalePoint &p = scaling[i];
                const double hps =
                    p.stats.wallSeconds > 0.0
                        ? static_cast<double>(p.stats.acts) /
                              p.stats.wallSeconds
                        : 0.0;
                std::fprintf(f,
                             "%s\n    {\"workers\": %d, "
                             "\"wall_seconds\": %.3f, \"acts\": "
                             "%" PRIu64 ", \"hammers_per_sec\": %.1f, "
                             "\"aggregate_rss_bytes\": %" PRIu64 "}",
                             i ? "," : "", p.workers,
                             p.stats.wallSeconds, p.stats.acts, hps,
                             p.stats.aggregateRssBytes);
            }
            std::fprintf(f, "\n  ]");
        }
        if (args.has("eager-ablation"))
            std::fprintf(f,
                         ",\n  \"eager_rss_bytes\": %" PRIu64
                         ",\n  \"eager_modules\": %d",
                         eager_rss,
                         std::min(cfg.modules, eager_modules));
        std::fprintf(f, "\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "perf record written to %s\n",
                     json_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }
    return 0;
}
