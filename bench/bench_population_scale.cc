/**
 * @file
 * Fleet-scale population sweep benchmark (ROADMAP item 4).
 *
 * Sweeps double-sided RowHammer HC_first over a population of module
 * instances using the streaming sweepPopulation pipeline: lazy
 * weak-cell thresholds, geometry-only victim enumeration, per-shard
 * SampleSketches, and optional shard-granular checkpoint/resume.
 *
 * stdout is the deterministic fleet summary -- byte-identical across
 * --jobs values and across checkpoint/resume splits (sketches merge in
 * canonical shard order; no wall-clock values are printed).  Wall
 * time, throughput, and peak RSS go to stderr and, as JSON, to
 * --json=FILE (default BENCH_population.json):
 *
 *   {
 *     "bench": "population_scale", "module_id": ..., "modules": N,
 *     "victims_per_module": V, "measures": M, "work_units": U,
 *     "shards": S, "resumed_shards": R, "jobs": J,
 *     "wall_seconds": W, "acts": A, "hammers_per_sec": A/W,
 *     "work_units_per_sec": U/W, "peak_rss_bytes": B,
 *     "populated_rows_per_module_max": P
 *   }
 *
 * Scale knobs beyond bench/common.h:
 *   --modules=N      module instances (default 10000)
 *   --victims=N      victims per subarray (default 1; 6 subarrays)
 *   --max-hammers=N  per-trial hammer budget (default 100000)
 *   --checkpoint=F   shard-granular checkpoint/resume file
 *   --json=F         perf record path (default BENCH_population.json)
 */

#include <atomic>
#include <cinttypes>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common.h"
#include "hammer/population.h"

namespace {

using namespace pud;
using namespace pud::bench;

/** Peak resident set size in bytes (0 when unsupported). */
std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB
#endif
#else
    return 0;
#endif
}

void
printSketch(const char *label, const stats::SampleSketch &sk)
{
    std::printf("%-10s n=%llu dropped=%llu min=%.0f p25=%.0f "
                "p50=%.0f p75=%.0f max=%.0f mean=%.1f\n",
                label, static_cast<unsigned long long>(sk.count()),
                static_cast<unsigned long long>(sk.dropped()),
                sk.min(), sk.quantile(0.25), sk.quantile(0.50),
                sk.quantile(0.75), sk.max(), sk.mean());
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    Scale scale = Scale::parse(args);

    hammer::PopulationConfig cfg;
    cfg.moduleId = args.get("module", "HMA81GU7AFR8N-UH");
    // Unlike the figure benches, the population bench does NOT cap the
    // instance count at the family's real module count: the whole
    // point is simulating fleets far beyond the paper's 316 chips.
    cfg.modules = static_cast<int>(args.getInt("modules", 10000));
    cfg.victimsPerSubarray =
        static_cast<dram::RowId>(args.getInt("victims", 1));
    cfg.rowsPerSubarray = scale.rowsPerSubarray;
    cfg.seed = scale.seed;
    cfg.jobs = scale.jobs;

    hammer::ModuleTester::Options opt;
    opt.search.maxHammers = static_cast<std::uint64_t>(
        args.getInt("max-hammers", 100000));

    // Track the lazy-threshold ablation: the most rows any single
    // module materialized.  Sublinear peak RSS in the module count
    // hinges on this staying far below rows-per-module.
    std::atomic<std::uint64_t> max_populated{0};
    const std::vector<hammer::MeasureFn> measures = {
        [&](hammer::ModuleTester &t, dram::RowId v) {
            const std::uint64_t hc = t.rhDouble(v, opt);
            const std::uint64_t populated =
                t.device().populatedRowCount();
            std::uint64_t seen = max_populated.load();
            while (populated > seen &&
                   !max_populated.compare_exchange_weak(seen,
                                                        populated)) {
            }
            return hc;
        }};

    hammer::SweepOptions sweep_opt;
    sweep_opt.checkpointPath = args.get("checkpoint", "");

    banner("fleet-scale population sweep", "ROADMAP item 4");
    std::printf("family %s, %d modules x %zu victims\n",
                cfg.moduleId.c_str(), cfg.modules,
                hammer::populationVictims(cfg).size());

    const hammer::SweepResult result =
        hammer::sweepPopulation(cfg, measures, sweep_opt);

    printSketch("rh_double", result.sketches[0]);
    std::printf("sketch-bytes %zu buckets %zu\n",
                result.sketches[0].serialize().size(),
                result.sketches[0].buckets());

    // ---- perf record (stderr + JSON; never stdout) -------------------
    const double wall = result.telemetry.wallSeconds;
    const std::uint64_t acts = result.telemetry.acts();
    const std::size_t units = result.telemetry.workUnits();
    const std::uint64_t rss = peakRssBytes();
    const double hammers_per_sec =
        wall > 0.0 ? static_cast<double>(acts) / wall : 0.0;
    const double units_per_sec =
        wall > 0.0 ? static_cast<double>(units) / wall : 0.0;

    std::fprintf(stderr,
                 "perf: wall %.2f s, %" PRIu64 " acts (%.3g "
                 "hammers/s), %zu units (%.3g units/s), peak RSS "
                 "%.1f MiB, resumed %zu/%zu shards, max %" PRIu64
                 " populated rows/module\n",
                 wall, acts, hammers_per_sec, units, units_per_sec,
                 static_cast<double>(rss) / (1024.0 * 1024.0),
                 result.resumedShards, result.totalShards,
                 max_populated.load());

    const std::string json_path =
        args.get("json", "BENCH_population.json");
    if (FILE *f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"population_scale\",\n"
            "  \"module_id\": \"%s\",\n"
            "  \"modules\": %d,\n"
            "  \"victims_per_module\": %zu,\n"
            "  \"measures\": %zu,\n"
            "  \"work_units\": %zu,\n"
            "  \"shards\": %zu,\n"
            "  \"resumed_shards\": %zu,\n"
            "  \"jobs\": %d,\n"
            "  \"wall_seconds\": %.3f,\n"
            "  \"acts\": %" PRIu64 ",\n"
            "  \"hammers_per_sec\": %.1f,\n"
            "  \"work_units_per_sec\": %.3f,\n"
            "  \"peak_rss_bytes\": %" PRIu64 ",\n"
            "  \"populated_rows_per_module_max\": %" PRIu64 "\n"
            "}\n",
            cfg.moduleId.c_str(), cfg.modules,
            units / std::max<std::size_t>(
                        1, static_cast<std::size_t>(cfg.modules)),
            measures.size(), units, result.totalShards,
            result.resumedShards, result.telemetry.jobs, wall, acts,
            hammers_per_sec, units_per_sec, rss,
            max_populated.load());
        std::fclose(f);
        std::fprintf(stderr, "perf record written to %s\n",
                     json_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }
    return 0;
}
