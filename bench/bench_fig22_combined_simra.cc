/**
 * @file
 * Reproduces Fig. 22: combining RowHammer with SiMRA (pre-hammer
 * fractions 10 / 50 / 90% of the per-row SiMRA HC_first).
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("combined RowHammer + SiMRA", "paper Fig. 22, Obs. 23");

    const auto &family = representative(dram::Manufacturer::SKHynix);
    ModuleTester::Options opt;
    opt.searchWcdp = !args.has("no-wcdp");
    // --refresh interleaves nominal REFs at the tREFI cadence into
    // every probe; the generalized fast-path keeps this cheap.
    opt.refreshInterleave = args.has("refresh");
    const int simra_n = static_cast<int>(args.getInt("n", 4));

    std::vector<MeasureFn> measures = {
        [&](ModuleTester &t, dram::RowId v) {
            return t.rhDouble(v, opt);
        }};
    for (double frac : {0.1, 0.5, 0.9}) {
        measures.push_back([&opt, frac, simra_n](ModuleTester &t,
                                                 dram::RowId v) {
            ModuleTester::CombinedSpec spec;
            spec.simraFraction = frac;
            spec.simraN = simra_n;
            return t.combinedRh(v, spec, opt);
        });
    }
    auto series = runPopulation(
        populationFor(family, scale, /*odd_only=*/true), measures);
    series = hammer::dropIncomplete(series);

    Table table({"SiMRA pre-hammer", "victims", "%lower",
                 "mean reduction x"});
    const char *labels[3] = {"10%", "50%", "90%"};
    double reduction90 = 0.0;
    for (int i = 0; i < 3; ++i) {
        const auto &rh = series[0];
        const auto &combined = series[i + 1];
        int lower = 0;
        std::vector<double> ratios;
        for (std::size_t k = 0; k < rh.size(); ++k) {
            lower += combined[k] < rh[k];
            ratios.push_back(rh[k] / std::max(1.0, combined[k]));
        }
        const double mean_reduction = stats::geomean(ratios);
        if (i == 2)
            reduction90 = mean_reduction;
        table.addRow(
            {labels[i], Table::count((long long)rh.size()),
             Table::num(100.0 * lower /
                            std::max<std::size_t>(1, rh.size()),
                        1),
             Table::num(mean_reduction, 2)});
    }
    table.print();
    std::printf("\nAt 90%%, mean reduction %.2fx (paper: combining "
                "with SiMRA is ~1.22x weaker than combining with "
                "CoMRA because the most RowHammer-vulnerable cell is "
                "often not SiMRA-vulnerable).\n",
                reduction90);
    return 0;
}
