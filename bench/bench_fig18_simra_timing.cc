/**
 * @file
 * Reproduces Fig. 18: double-sided SiMRA HC_first across violated
 * ACT -> PRE and PRE -> ACT gaps (1.5 / 3 / 4.5 ns grids).
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("SiMRA ACT-PRE-ACT timing sweep",
           "paper Fig. 18, Obs. 19-20");

    const auto &family = representative(dram::Manufacturer::SKHynix);
    const int n = static_cast<int>(args.getInt("n", 16));

    Table table(boxHeader("ACT->PRE / PRE->ACT"));
    double mean[3][3] = {};
    const double gaps[3] = {1.5, 3.0, 4.5};
    for (int a = 0; a < 3; ++a) {
        for (int p = 0; p < 3; ++p) {
            ModuleTester::Options opt;
            opt.pattern = dram::DataPattern::P00;
            opt.timings.simraActToPre = units::fromNs(gaps[a]);
            opt.timings.simraPreToAct = units::fromNs(gaps[p]);
            auto series = runPopulation(
                populationFor(family, scale, /*odd_only=*/true),
                {[&](ModuleTester &t, dram::RowId v) {
                    return t.simraDouble(v, n, opt);
                }});
            series = hammer::dropIncomplete(series);
            char label[32];
            std::snprintf(label, sizeof(label), "%.1fns / %.1fns",
                          gaps[a], gaps[p]);
            table.addRow(boxRow(label, series[0]));
            mean[a][p] = stats::boxStats(series[0]).mean;
        }
    }
    std::printf("SiMRA-%d (%s):\n", n, family.moduleId.c_str());
    table.print();
    std::printf("\nACT->PRE 1.5ns vs 3ns (partial activation): "
                "%.2fx higher mean HC_first (paper: 2.28x)\n",
                mean[0][1] / mean[1][1]);
    std::printf("PRE->ACT 1.5ns -> 4.5ns at ACT->PRE 3ns: %.2fx "
                "lower mean HC_first (paper: 1.23x)\n",
                mean[1][0] / mean[1][2]);
    return 0;
}
