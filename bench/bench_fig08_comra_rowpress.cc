/**
 * @file
 * Reproduces Fig. 8: double-sided CoMRA vs RowHammer/RowPress across
 * t_AggOn values (36ns, 144ns, 7.8us, 70.2us), including the Obs. 7
 * crossover where RowPress overtakes CoMRA at t_AggOn = tREFI and
 * CoMRA wins again at 9x tREFI.
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("CoMRA vs RowPress t_AggOn sweep",
           "paper Fig. 8, Obs. 6-7");

    const double t_on_ns[] = {36.0, 144.0, 7800.0, 70200.0};

    for (auto mfr : kAllMfrs) {
        const auto &family = representative(mfr);
        Table table(boxHeader("technique @ t_AggOn"));
        double comra_mean[4] = {}, press_mean[4] = {};
        for (int i = 0; i < 4; ++i) {
            ModuleTester::Options opt;
            opt.searchWcdp = true;
            opt.timings.tAggOn = units::fromNs(t_on_ns[i]);
            auto series = runPopulation(
                populationFor(family, scale),
                {[&](ModuleTester &t, dram::RowId v) {
                     return t.comraDouble(v, opt);
                 },
                 [&](ModuleTester &t, dram::RowId v) {
                     return t.rhDouble(v, opt);  // RowPress when held
                 }});
            series = hammer::dropIncomplete(series);
            char label[48];
            std::snprintf(label, sizeof(label), "CoMRA @ %gns",
                          t_on_ns[i]);
            table.addRow(boxRow(label, series[0]));
            std::snprintf(label, sizeof(label), "RowPress @ %gns",
                          t_on_ns[i]);
            table.addRow(boxRow(label, series[1]));
            comra_mean[i] = stats::boxStats(series[0]).mean;
            press_mean[i] = stats::boxStats(series[1]).mean;
        }
        std::printf("\n%s (%s):\n", name(mfr),
                    family.moduleId.c_str());
        table.print();
        std::printf("CoMRA mean reduction 36ns -> 70.2us: %.1fx "
                    "(paper, Micron: 78.74x); RowPress: %.1fx "
                    "(paper: 31.15x)\n",
                    comra_mean[0] / comra_mean[3],
                    press_mean[0] / press_mean[3]);
        std::printf("winner by mean HC_first: 144ns: %s, 7.8us: %s, "
                    "70.2us: %s (paper: CoMRA, RowPress, CoMRA)\n",
                    comra_mean[1] < press_mean[1] ? "CoMRA" : "RowPress",
                    comra_mean[2] < press_mean[2] ? "CoMRA" : "RowPress",
                    comra_mean[3] < press_mean[3] ? "CoMRA"
                                                  : "RowPress");
    }
    return 0;
}
