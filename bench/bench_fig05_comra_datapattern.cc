/**
 * @file
 * Reproduces Fig. 5: HC_first distribution of double-sided CoMRA for
 * the four aggressor data patterns (victims hold the negation).
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("CoMRA data-pattern sweep", "paper Fig. 5, Obs. 3");

    for (auto mfr : kAllMfrs) {
        const auto &family = representative(mfr);
        Table table(boxHeader("aggressor pattern"));
        for (dram::DataPattern pattern : dram::kAllPatterns) {
            ModuleTester::Options opt;
            opt.pattern = pattern;
            auto series = runPopulation(
                populationFor(family, scale),
                {[&](ModuleTester &t, dram::RowId v) {
                    return t.comraDouble(v, opt);
                }});
            series = hammer::dropIncomplete(series);
            table.addRow(boxRow(dram::name(pattern), series[0]));
        }
        std::printf("\n%s (%s):\n", name(mfr),
                    family.moduleId.c_str());
        table.print();
    }
    std::printf("\nExpected shape: checkerboard (0x55/0xAA) lowest "
                "HC_first in most cases; Nanya shows no flips for "
                "solid patterns within the hammer budget.\n");
    return 0;
}
