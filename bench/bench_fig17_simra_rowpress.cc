/**
 * @file
 * Reproduces Fig. 17: double-sided SiMRA vs RowPress across t_AggOn
 * values (the open time after the ACT-PRE-ACT group activation).
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("SiMRA vs RowPress t_AggOn sweep",
           "paper Fig. 17, Obs. 18");

    const auto &family = representative(dram::Manufacturer::SKHynix);
    const double t_on_ns[4] = {36.0, 144.0, 7800.0, 70200.0};

    for (int n : {2, 4, 8, 16}) {
        Table table(boxHeader("t_AggOn"));
        double first_mean = 0, last_mean = 0;
        for (int i = 0; i < 4; ++i) {
            ModuleTester::Options opt;
            opt.pattern = dram::DataPattern::P00;
            opt.timings.tAggOn = units::fromNs(t_on_ns[i]);
            auto series = runPopulation(
                populationFor(family, scale, /*odd_only=*/true),
                {[&](ModuleTester &t, dram::RowId v) {
                    return t.simraDouble(v, n, opt);
                }});
            series = hammer::dropIncomplete(series);
            char label[24];
            std::snprintf(label, sizeof(label), "%gns", t_on_ns[i]);
            table.addRow(boxRow(label, series[0]));
            const double mean = stats::boxStats(series[0]).mean;
            if (i == 0)
                first_mean = mean;
            if (i == 3)
                last_mean = mean;
        }
        std::printf("\nSiMRA-%d:\n", n);
        table.print();
        std::printf("mean HC_first decrease 36ns -> 70.2us: %.1fx "
                    "(paper: 144.93x - 270.27x across N)\n",
                    first_mean / last_mean);
    }
    return 0;
}
