/**
 * @file
 * Reproduces Fig. 11: double-sided CoMRA HC_first by victim-row
 * location in the subarray (five regions).
 */

#include <array>

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("CoMRA spatial variation", "paper Fig. 11, Obs. 10-11");

    // Each manufacturer's sweep owns its tester, so the four sweeps
    // run in parallel under --jobs; results land in per-mfr slots and
    // are printed in the fixed manufacturer order below, keeping
    // stdout byte-identical for every --jobs value.
    constexpr std::size_t kMfrs = std::size(kAllMfrs);
    std::array<std::array<std::vector<double>, dram::kNumRegions>,
               kMfrs>
        results;
    exec::parallelFor(scale.jobs, kMfrs, [&](std::size_t mi) {
        const auto &family = representative(kAllMfrs[mi]);
        ModuleTester::Options opt;
        opt.searchWcdp = true;

        // Collect HC_first together with each victim's region.
        dram::DeviceConfig cfg =
            dram::makeConfig(family.moduleId, scale.seed);
        cfg.rowsPerSubarray = scale.rowsPerSubarray;
        ModuleTester tester(cfg);
        const auto &model = tester.device().disturbModel();
        for (dram::RowId v : tester.sampleVictims(scale.victims * 2)) {
            const auto hc = tester.comraDouble(v, opt);
            if (hc == kNoFlip)
                continue;
            results[mi][static_cast<std::size_t>(
                            model.regionOf(v))]
                .push_back(static_cast<double>(hc));
        }
    });

    for (std::size_t mi = 0; mi < kMfrs; ++mi) {
        const auto mfr = kAllMfrs[mi];
        const auto &family = representative(mfr);
        const auto &by_region = results[mi];

        Table table(boxHeader("region"));
        double lo_mean = 1e18, hi_mean = 0;
        for (int r = 0; r < dram::kNumRegions; ++r) {
            table.addRow(boxRow(
                dram::name(static_cast<dram::Region>(r)),
                by_region[r]));
            const double mean = stats::boxStats(by_region[r]).mean;
            if (mean > 0) {
                lo_mean = std::min(lo_mean, mean);
                hi_mean = std::max(hi_mean, mean);
            }
        }
        std::printf("\n%s (%s):\n", name(mfr),
                    family.moduleId.c_str());
        table.print();
        const double paper =
            mfr == dram::Manufacturer::SKHynix   ? 1.40
            : mfr == dram::Manufacturer::Micron  ? 2.25
            : mfr == dram::Manufacturer::Samsung ? 2.57
                                                 : 1.04;
        std::printf("max/min mean HC_first across regions: %.2fx "
                    "(paper: %.2fx)\n",
                    hi_mean / lo_mean, paper);
    }
    return 0;
}
