/**
 * @file
 * Reproduces Fig. 4: the distribution of the change in HC_first under
 * double-sided CoMRA vs double-sided RowHammer (left plot) and the
 * lowest HC_first observed per manufacturer (right plot).
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("double-sided CoMRA vs RowHammer", "paper Fig. 4, Obs. 1-2");

    Table change_table({"mfr", "victims", "dropped", "%lower",
                        "%>50%red", "%>90%red", "median change%"});
    Table lowest_table({"mfr", "lowest RH", "lowest CoMRA",
                        "reduction x", "paper x"});

    for (auto mfr : kAllMfrs) {
        std::vector<double> rh_all, comra_all;
        for (const auto &family : dram::table2Families()) {
            if (family.mfr != mfr)
                continue;
            ModuleTester::Options opt;
            opt.searchWcdp = true;
            auto series = runPopulation(
                populationFor(family, scale),
                {[&](ModuleTester &t, dram::RowId v) {
                     return t.rhDouble(v, opt);
                 },
                 [&](ModuleTester &t, dram::RowId v) {
                     return t.comraDouble(v, opt);
                 }});
            series = hammer::dropIncomplete(series);
            rh_all.insert(rh_all.end(), series[0].begin(),
                          series[0].end());
            comra_all.insert(comra_all.end(), series[1].begin(),
                             series[1].end());
        }

        std::size_t dropped = 0;
        const auto change =
            stats::changeCurve(rh_all, comra_all, &dropped);
        change_table.addRow(
            {name(mfr), Table::count((long long)change.size()),
             Table::count((long long)dropped),
             Table::num(100.0 * stats::fractionBelow(change, 0.0), 1),
             Table::num(100.0 * stats::fractionBelow(change, -50.0), 1),
             Table::num(100.0 * stats::fractionBelow(change, -90.0), 1),
             Table::num(stats::quantileSorted(
                            [&] {
                                auto c = change;
                                std::sort(c.begin(), c.end());
                                return c;
                            }(),
                            0.5),
                        1)});

        const double rh_min = stats::boxStats(rh_all).min;
        const double comra_min = stats::boxStats(comra_all).min;
        // Paper's lowest-HC_first reductions per manufacturer (Obs. 1).
        const double paper_x =
            mfr == dram::Manufacturer::SKHynix   ? 13.98
            : mfr == dram::Manufacturer::Micron  ? 1.18
            : mfr == dram::Manufacturer::Samsung ? 3.28
                                                 : 1.58;
        lowest_table.addRow({name(mfr), Table::num(rh_min, 0),
                             Table::num(comra_min, 0),
                             Table::num(rh_min / comra_min, 2),
                             Table::num(paper_x, 2)});
    }

    std::printf("\n[left] HC_first change distribution "
                "(CoMRA vs RowHammer):\n");
    change_table.print();
    std::printf("\n[right] lowest observed HC_first:\n");
    lowest_table.print();
    return 0;
}
