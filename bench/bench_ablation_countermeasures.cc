/**
 * @file
 * Ablation 3 (DESIGN.md §5): the §8.1 countermeasures.
 *
 *  - Clustered multiple-row activation: replaying the double-sided
 *    SiMRA experiment with the clustered decoder geometry shows the
 *    sandwiched-victim channel disappears (only edge victims remain).
 *  - Compute-region separation: sweeps the per-op refresh interval
 *    and reports the worst-case SiMRA exposure against the lowest
 *    observed SiMRA HC_first (26).
 */

#include "common.h"
#include "mitigation/countermeasures.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("countermeasure ablations", "paper §8.1");

    // --- clustered activation removes double-sided SiMRA --------------
    {
        Table table({"N", "bit-combination group", "clustered group",
                     "sandwiched victims (combi)", "(clustered)"});
        dram::SimraDecoder decoder(512);
        for (int n : {2, 4, 8, 16}) {
            const dram::RowId r1 = 100;
            dram::RowId mask = 0;
            for (int b = 1; (1 << b) <= n; ++b)
                mask |= dram::RowId(1) << b;
            const auto combi = decoder.activatedSet(r1, r1 ^ mask);
            const auto clustered =
                mitigation::clusteredActivationSet(r1, n, 512);

            auto sandwiched = [](const std::vector<dram::RowId> &g) {
                int s = 0;
                for (std::size_t i = 0; i + 1 < g.size(); ++i)
                    s += g[i + 1] - g[i] == 2;
                return s;
            };
            char span_a[48], span_b[48];
            std::snprintf(span_a, sizeof(span_a), "%u..%u (%zu rows)",
                          combi.front(), combi.back(), combi.size());
            std::snprintf(span_b, sizeof(span_b), "%u..%u (%zu rows)",
                          clustered.front(), clustered.back(),
                          clustered.size());
            table.addRow({Table::count(n), span_a, span_b,
                          Table::count(sandwiched(combi)),
                          Table::count(sandwiched(clustered))});
        }
        std::printf("\n[clustered multiple-row activation]\n");
        table.print();
    }

    // --- compute-region refresh interval sweep -------------------------
    {
        std::printf("\n[compute-region separation]\n");
        Table table({"compute rows", "refresh every N ops",
                     "worst-case exposure (ops)",
                     "below SiMRA HC_first=26?"});
        for (dram::RowId rows : {8u, 16u, 32u}) {
            for (int every : {1, 2, 20}) {
                mitigation::ComputeRegionPolicy policy(512, rows,
                                                       every);
                const auto exposure =
                    policy.maxOpsBetweenRefreshes();
                table.addRow({Table::count(rows),
                              Table::count(every),
                              Table::count((long long)exposure),
                              exposure < 26 ? "yes" : "NO"});
            }
        }
        table.print();
        std::printf("Paper sketch (refresh after ~20 SiMRA ops) only "
                    "holds for small compute regions; the sweep "
                    "quantifies the constraint.\n");
    }

    // --- storage-region residual risk: single-sided CoMRA --------------
    {
        std::printf("\n[storage-region residual: single-sided CoMRA "
                    "reduction vs RowHammer]\n");
        const auto &family =
            representative(dram::Manufacturer::SKHynix);
        ModuleTester::Options opt;
        opt.searchWcdp = true;
        opt.search.maxHammers = 2000000;
        auto series = runPopulation(
            populationFor(family, scale),
            {[&](ModuleTester &t, dram::RowId v) {
                 return t.rhSingle(v, opt);
             },
             [&](ModuleTester &t, dram::RowId v) {
                 return t.comraSingle(v, opt);
             },
             [&](ModuleTester &t, dram::RowId v) {
                 return t.farDouble(v, opt);
             }});
        series = hammer::dropIncomplete(series);
        std::vector<double> vs_ss, vs_far;
        for (std::size_t k = 0; k < series[0].size(); ++k) {
            vs_ss.push_back(series[0][k] / series[1][k]);
            vs_far.push_back(series[2][k] / series[1][k]);
        }
        std::printf("ss-CoMRA vs ss-RowHammer: %.3fx; vs the far "
                    "double-sided access pattern it adds only "
                    "%.1f%%\n -> RowHammer mitigations for the "
                    "storage region need only a small threshold "
                    "margin (paper: <2%% vs Fig. 7's far pattern).\n",
                    stats::geomean(vs_ss),
                    100.0 * (stats::geomean(vs_far) - 1.0));
    }
    return 0;
}
