/**
 * @file
 * Reproduces Fig. 13: double-sided SiMRA-N (N = 2, 4, 8, 16) vs
 * double-sided RowHammer -- change distribution and lowest observed
 * HC_first.  SiMRA is only observable on SK Hynix chips.
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("double-sided SiMRA vs RowHammer",
           "paper Fig. 13, Obs. 12");

    std::vector<double> rh_all;
    std::vector<double> simra_all[4];
    const int ns[4] = {2, 4, 8, 16};

    for (const auto &family : dram::table2Families()) {
        if (!family.supportsSimra)
            continue;
        ModuleTester::Options opt;
        opt.searchWcdp = true;
        std::vector<MeasureFn> measures = {
            [&](ModuleTester &t, dram::RowId v) {
                return t.rhDouble(v, opt);
            }};
        for (int i = 0; i < 4; ++i) {
            const int n = ns[i];
            measures.push_back([&opt, n](ModuleTester &t,
                                         dram::RowId v) {
                return t.simraDouble(v, n, opt);
            });
        }
        auto series = runPopulation(
            populationFor(family, scale, /*odd_only=*/true), measures);
        series = hammer::dropIncomplete(series);
        rh_all.insert(rh_all.end(), series[0].begin(),
                      series[0].end());
        for (int i = 0; i < 4; ++i)
            simra_all[i].insert(simra_all[i].end(),
                                series[i + 1].begin(),
                                series[i + 1].end());
    }

    Table change_table({"N", "victims", "dropped", "%lower",
                        "%>99%red", "lowest SiMRA", "lowest RH",
                        "best reduction x"});
    for (int i = 0; i < 4; ++i) {
        std::size_t dropped = 0;
        const auto change =
            stats::changeCurve(rh_all, simra_all[i], &dropped);
        double best = 1.0;
        for (std::size_t k = 0; k < rh_all.size(); ++k)
            best = std::max(best, rh_all[k] / simra_all[i][k]);
        change_table.addRow(
            {Table::count(ns[i]),
             Table::count((long long)change.size()),
             Table::count((long long)dropped),
             Table::num(100.0 * stats::fractionBelow(change, 0.0), 2),
             Table::num(100.0 * stats::fractionBelow(change, -99.0),
                        2),
             Table::num(stats::boxStats(simra_all[i]).min, 0),
             Table::num(stats::boxStats(rh_all).min, 0),
             Table::num(best, 1)});
    }
    change_table.print();
    std::printf(
        "\nPaper: 100 / 98.79 / 97.40 / 94.94%% of victims lower for "
        "N=2/4/8/16; >=25.19%% of victims with >99%% reduction for "
        "all N; HC_first down to 26; best per-victim reduction "
        "158.58x (N=4).\n");
    return 0;
}
