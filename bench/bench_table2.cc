/**
 * @file
 * Reproduces the paper's Table 2: per module family, the minimum and
 * average HC_first across all tested rows for double-sided RowHammer,
 * CoMRA, and SiMRA, next to the paper's reported anchors.
 *
 * Two execution paths:
 *
 *  - default: the in-process measurePopulation pipeline with pairwise
 *    dropIncomplete filtering (a victim counts only if *every*
 *    technique flipped it), exactly the paper's paired methodology;
 *  - --workers=N: the multi-process popsweep sketch path, which scales
 *    to the paper's full 316-chip population (--full uncaps the module
 *    count at each family's real Table 2 size unless --modules is
 *    given).  Sketches are streaming and per-measure, so min/avg are
 *    over each technique's own flipped victims independently -- the
 *    pairing of dropIncomplete cannot be expressed in merged sketches
 *    and min/avg here do not depend on it.  Per-family wall time and
 *    aggregate worker RSS go to stderr; stdout stays deterministic.
 */

#include <climits>
#include <cstdio>

#include "common.h"
#include "hammer/popsweep.h"

using namespace pud;
using namespace pud::bench;

namespace {

/** moduleId as a path component ("KVR24N17S8/8" has a slash). */
std::string
familySlug(const std::string &module_id)
{
    std::string s = module_id;
    for (char &c : s)
        if (c == '/')
            c = '_';
    return s;
}

std::string
cellFromStats(double mn, double mean)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f (%.1fK)", mn,
                  mean / 1000.0);
    return std::string(buf);
}

std::string
paperCell(double mn, double avg)
{
    if (mn <= 0)
        return std::string("N/A");
    return cellFromStats(mn, avg);
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    Scale scale = Scale::parse(args);
    const int workers = static_cast<int>(args.getInt("workers", 0));
    const std::string dir = args.get("dir", "BENCH_table2.workdir");

    // Paper scale: --full --workers=N runs every family at its real
    // Table 2 module count (316 chips fleet-wide) through the sketch
    // path; populationFor still clamps to family.numModules.
    if (workers > 0 && args.has("full") && !args.has("modules"))
        scale.modulesCap = INT_MAX;

    banner("Table 2: per-family min (avg) HC_first", "paper Table 2");

    Table table({"module", "mfr", "die", "dens",
                 "RH min(avg)", "paper",
                 "CoMRA min(avg)", "paper",
                 "SiMRA min(avg)", "paper"});

    for (const auto &family : dram::table2Families()) {
        ModuleTester::Options opt;
        opt.searchWcdp = true;

        std::vector<MeasureFn> measures = {
            [&](ModuleTester &t, dram::RowId v) {
                return t.rhDouble(v, opt);
            },
            [&](ModuleTester &t, dram::RowId v) {
                return t.comraDouble(v, opt);
            },
        };
        if (family.supportsSimra) {
            measures.push_back([&](ModuleTester &t, dram::RowId v) {
                return t.simraDouble(v, 4, opt);
            });
        }

        // SiMRA needs sandwichable victims; use the same odd victim
        // population for every technique so the comparison is paired.
        const PopulationConfig cfg =
            populationFor(family, scale, family.supportsSimra);

        std::string rh, comra, simra = "N/A";
        if (workers > 0) {
            hammer::PopsweepOptions popt;
            popt.dir = dir + "_" + familySlug(family.moduleId);
            popt.workers = workers;
            popt.jobsPerWorker = scale.jobs;
            const hammer::PopsweepResult r =
                hammer::popsweep(cfg, measures, popt);
            const auto &sk = r.sweep.sketches;
            rh = cellFromStats(sk[0].min(), sk[0].mean());
            comra = cellFromStats(sk[1].min(), sk[1].mean());
            if (family.supportsSimra)
                simra = cellFromStats(sk[2].min(), sk[2].mean());
            std::fprintf(stderr,
                         "# %s: %d modules, %zu shards, wall %.1f s, "
                         "aggregate RSS %.1f MiB, workers %d\n",
                         family.moduleId.c_str(), cfg.modules,
                         r.sweep.totalShards,
                         r.sweep.telemetry.wallSeconds,
                         static_cast<double>(r.aggregateRssBytes) /
                             (1024.0 * 1024.0),
                         workers);
        } else {
            auto series = runPopulation(cfg, measures);
            series = hammer::dropIncomplete(series);
            auto cell = [](const std::vector<double> &s) {
                const auto bs = stats::boxStats(s);
                return cellFromStats(bs.min, bs.mean);
            };
            rh = cell(series[0]);
            comra = cell(series[1]);
            if (family.supportsSimra)
                simra = cell(series[2]);
        }

        table.addRow({family.moduleId, name(family.mfr), family.dieRev,
                      family.density, rh,
                      paperCell(family.rhMin, family.rhAvg), comra,
                      paperCell(family.comraMin, family.comraAvg),
                      simra,
                      paperCell(family.simraMin, family.simraAvg)});
    }

    table.print();
    std::printf("\nNote: measured minima depend on the sampled "
                "population size; run with --full to approach the "
                "paper's all-rows scale.\n");
    if (workers > 0)
        std::printf("Note: --workers uses the streaming sketch path; "
                    "min/avg are per-technique over flipped victims "
                    "(no pairwise dropIncomplete filtering).\n");
    return 0;
}
