/**
 * @file
 * Reproduces the paper's Table 2: per module family, the minimum and
 * average HC_first across all tested rows for double-sided RowHammer,
 * CoMRA, and SiMRA, next to the paper's reported anchors.
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("Table 2: per-family min (avg) HC_first", "paper Table 2");

    Table table({"module", "mfr", "die", "dens",
                 "RH min(avg)", "paper",
                 "CoMRA min(avg)", "paper",
                 "SiMRA min(avg)", "paper"});

    for (const auto &family : dram::table2Families()) {
        ModuleTester::Options opt;
        opt.searchWcdp = true;

        std::vector<MeasureFn> measures = {
            [&](ModuleTester &t, dram::RowId v) {
                return t.rhDouble(v, opt);
            },
            [&](ModuleTester &t, dram::RowId v) {
                return t.comraDouble(v, opt);
            },
        };
        if (family.supportsSimra) {
            measures.push_back([&](ModuleTester &t, dram::RowId v) {
                return t.simraDouble(v, 4, opt);
            });
        }

        // SiMRA needs sandwichable victims; use the same odd victim
        // population for every technique so the comparison is paired.
        auto series = runPopulation(
            populationFor(family, scale, family.supportsSimra),
            measures);
        series = hammer::dropIncomplete(series);

        auto cell = [](const std::vector<double> &s) {
            const auto bs = stats::boxStats(s);
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.0f (%.1fK)", bs.min,
                          bs.mean / 1000.0);
            return std::string(buf);
        };
        auto paper_cell = [](double mn, double avg) {
            if (mn <= 0)
                return std::string("N/A");
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.0f (%.1fK)", mn,
                          avg / 1000.0);
            return std::string(buf);
        };

        table.addRow({family.moduleId, name(family.mfr), family.dieRev,
                      family.density, cell(series[0]),
                      paper_cell(family.rhMin, family.rhAvg),
                      cell(series[1]),
                      paper_cell(family.comraMin, family.comraAvg),
                      family.supportsSimra ? cell(series[2]) : "N/A",
                      paper_cell(family.simraMin, family.simraAvg)});
    }

    table.print();
    std::printf("\nNote: measured minima depend on the sampled "
                "population size; run with --full to approach the "
                "paper's all-rows scale.\n");
    return 0;
}
