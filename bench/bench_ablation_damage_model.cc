/**
 * @file
 * Ablation 2 (DESIGN.md §5): linear damage accrual vs a
 * non-accumulating "max rule".
 *
 * Under linear accrual, pre-hammering with CoMRA transfers partial
 * damage to the RowHammer phase, reproducing the paper's combined-
 * pattern gains (Figs. 21-23).  A max rule -- where a technique only
 * flips a cell if that technique alone reaches the threshold -- would
 * predict *zero* benefit from combining.  This bench quantifies the
 * gap by comparing the measured combined reduction against the
 * max-rule prediction (1.0x).
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("damage-model ablation: linear accrual vs max rule",
           "DESIGN.md §5.2");

    const auto &family = representative(dram::Manufacturer::SKHynix);
    ModuleTester::Options opt;

    auto series = runPopulation(
        populationFor(family, scale, /*odd_only=*/true),
        {[&](ModuleTester &t, dram::RowId v) {
             return t.rhDouble(v, opt);
         },
         [&](ModuleTester &t, dram::RowId v) {
             ModuleTester::CombinedSpec spec;
             spec.comraFraction = 0.9;
             return t.combinedRh(v, spec, opt);
         },
         [&](ModuleTester &t, dram::RowId v) {
             return t.comraDouble(v, opt);
         }});
    series = hammer::dropIncomplete(series);

    std::vector<double> measured_ratio;
    for (std::size_t k = 0; k < series[0].size(); ++k)
        measured_ratio.push_back(series[0][k] /
                                 std::max(1.0, series[1][k]));

    Table table({"model", "mean combined reduction x", "matches Obs. 22?"});
    table.addRow({"linear accrual (implemented)",
                  Table::num(stats::geomean(measured_ratio), 2),
                  "yes (paper: 1.34x at 90%)"});
    table.addRow({"max rule (hypothetical)", Table::num(1.0, 2),
                  "no (predicts no combined benefit)"});
    table.print();

    // Full damage sharing would predict 1 / (1 - 0.9) = 10x; the
    // measured value sits between because per-cell technique
    // susceptibilities only partially overlap (Obs. 23).
    std::printf("\nFull-sharing bound: 10.00x; measured %.2fx; "
                "max-rule bound: 1.00x.  Only partial linear accrual "
                "reproduces the paper.\n",
                stats::geomean(measured_ratio));
    return 0;
}
