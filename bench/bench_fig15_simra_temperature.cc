/**
 * @file
 * Reproduces Fig. 15: double-sided SiMRA HC_first at 50/60/70/80C
 * per number of simultaneously activated rows.
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("SiMRA temperature sweep", "paper Fig. 15, Obs. 15");

    const auto &family = representative(dram::Manufacturer::SKHynix);
    const double paper_ratio[4] = {3.24, 3.10, 3.02, 3.26};
    const int ns[4] = {2, 4, 8, 16};

    for (int i = 0; i < 4; ++i) {
        const int n = ns[i];
        Table table(boxHeader("temperature"));
        double mean50 = 0, mean80 = 0;
        for (double temp : {50.0, 60.0, 70.0, 80.0}) {
            ModuleTester::Options opt;
            opt.pattern = dram::DataPattern::P00;
            auto series = runPopulation(
                populationFor(family, scale, /*odd_only=*/true),
                {[&](ModuleTester &t, dram::RowId v) {
                    t.bench().thermo().setTarget(temp);
                    return t.simraDouble(v, n, opt);
                }});
            series = hammer::dropIncomplete(series);
            char label[16];
            std::snprintf(label, sizeof(label), "%.0fC", temp);
            table.addRow(boxRow(label, series[0]));
            const double mean = stats::boxStats(series[0]).mean;
            if (temp == 50.0)
                mean50 = mean;
            if (temp == 80.0)
                mean80 = mean;
        }
        std::printf("\nSiMRA-%d:\n", n);
        table.print();
        std::printf("mean HC_first decrease 50C -> 80C: %.2fx "
                    "(paper: %.2fx)\n",
                    mean50 / mean80, paper_ratio[i]);
    }
    return 0;
}
