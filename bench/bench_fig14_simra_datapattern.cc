/**
 * @file
 * Reproduces Fig. 14: double-sided SiMRA HC_first per aggressor data
 * pattern and N, showing the strong directionality effect (Obs.
 * 13-14: the dominant SiMRA flip direction is 1 -> 0, so the all-ones
 * victim / all-zeros aggressor pattern is by far the most effective).
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("SiMRA data-pattern sweep", "paper Fig. 14, Obs. 13-14");

    const auto &family = representative(dram::Manufacturer::SKHynix);

    for (int n : {2, 4, 8, 16}) {
        Table table(boxHeader("aggressor pattern"));
        double best_mean = 1e18, worst_mean = 0;
        std::size_t noflip_total = 0;
        for (dram::DataPattern pattern : dram::kAllPatterns) {
            ModuleTester::Options opt;
            opt.pattern = pattern;
            const auto series = runPopulation(
                populationFor(family, scale, /*odd_only=*/true),
                {[&](ModuleTester &t, dram::RowId v) {
                    return t.simraDouble(v, n, opt);
                }});
            std::vector<double> finite;
            std::size_t noflip = 0;
            for (double x : series[0]) {
                if (std::isnan(x))
                    ++noflip;
                else
                    finite.push_back(x);
            }
            noflip_total += noflip;
            char label[48];
            std::snprintf(label, sizeof(label), "%s (noflip %zu)",
                          dram::name(pattern), noflip);
            table.addRow(boxRow(label, finite));
            const double mean = stats::boxStats(finite).mean;
            if (mean > 0) {
                best_mean = std::min(best_mean, mean);
                worst_mean = std::max(worst_mean, mean);
            }
        }
        std::printf("\nSiMRA-%d (%s):\n", n, family.moduleId.c_str());
        table.print();
        std::printf("mean HC_first worst/best pattern ratio: %.1fx "
                    "(paper: up to 57.80x; victim 0x00 rows often "
                    "never flip)\n",
                    worst_mean / best_mean);
    }
    return 0;
}
