/**
 * @file
 * Reproduces Fig. 21: combining RowHammer with CoMRA.  Victims are
 * pre-hammered with CoMRA up to 10 / 50 / 90% of their CoMRA HC_first
 * and then RowHammered until the first bitflip; the reported metric is
 * the change in the RowHammer count vs plain RowHammer.
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("combined RowHammer + CoMRA", "paper Fig. 21, Obs. 22");

    const auto &family = representative(dram::Manufacturer::SKHynix);
    ModuleTester::Options opt;
    opt.searchWcdp = !args.has("no-wcdp");
    // --refresh interleaves nominal REFs at the tREFI cadence into
    // every probe; the generalized fast-path keeps this cheap.
    opt.refreshInterleave = args.has("refresh");

    std::vector<MeasureFn> measures = {
        [&](ModuleTester &t, dram::RowId v) {
            return t.rhDouble(v, opt);
        }};
    for (double frac : {0.1, 0.5, 0.9}) {
        measures.push_back([&opt, frac](ModuleTester &t,
                                        dram::RowId v) {
            ModuleTester::CombinedSpec spec;
            spec.comraFraction = frac;
            return t.combinedRh(v, spec, opt);
        });
    }
    auto series =
        runPopulation(populationFor(family, scale), measures);
    series = hammer::dropIncomplete(series);

    Table table({"CoMRA pre-hammer", "victims", "%lower",
                 "mean reduction x", "paper x"});
    const double paper[3] = {1.02, 1.12, 1.34};
    const char *labels[3] = {"10%", "50%", "90%"};
    for (int i = 0; i < 3; ++i) {
        const auto &rh = series[0];
        const auto &combined = series[i + 1];
        int lower = 0;
        std::vector<double> ratios;
        for (std::size_t k = 0; k < rh.size(); ++k) {
            lower += combined[k] < rh[k];
            ratios.push_back(rh[k] / std::max(1.0, combined[k]));
        }
        table.addRow(
            {labels[i], Table::count((long long)rh.size()),
             Table::num(100.0 * lower /
                            std::max<std::size_t>(1, rh.size()),
                        1),
             Table::num(stats::geomean(ratios), 2),
             Table::num(paper[i], 2)});
    }
    table.print();
    std::printf("\nPaper: 95.33%% of victims lower; reduction grows "
                "with the CoMRA fraction up to 1.34x at 90%%.\n");
    return 0;
}
