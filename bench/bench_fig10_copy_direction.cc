/**
 * @file
 * Reproduces Fig. 10: change in HC_first when the CoMRA copy
 * direction is reversed (dst -> src instead of src -> dst), for
 * double-sided and single-sided attacks.
 */

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("CoMRA copy-direction reversal", "paper Fig. 10, Obs. 9");

    Table table({"mfr", "attack", "victims", "mean |change|%",
                 "max |change| x"});

    for (auto mfr : kAllMfrs) {
        const auto &family = representative(mfr);
        ModuleTester::Options opt;
        opt.searchWcdp = true;
        opt.search.maxHammers = 2000000;

        for (bool double_sided : {true, false}) {
            auto series = runPopulation(
                populationFor(family, scale),
                {[&](ModuleTester &t, dram::RowId v) {
                     return double_sided
                                ? t.comraDouble(v, opt, false)
                                : t.comraSingle(v, opt, 100, false);
                 },
                 [&](ModuleTester &t, dram::RowId v) {
                     return double_sided
                                ? t.comraDouble(v, opt, true)
                                : t.comraSingle(v, opt, 100, true);
                 }});
            series = hammer::dropIncomplete(series);

            double sum_abs = 0.0, max_ratio = 1.0;
            for (std::size_t i = 0; i < series[0].size(); ++i) {
                const double a = series[0][i], b = series[1][i];
                sum_abs += std::abs(b - a) / a * 100.0;
                max_ratio = std::max(
                    max_ratio, std::max(a / b, b / a));
            }
            const double mean_abs =
                series[0].empty()
                    ? 0.0
                    : sum_abs / static_cast<double>(series[0].size());
            table.addRow({name(mfr),
                          double_sided ? "double-sided"
                                       : "single-sided",
                          Table::count((long long)series[0].size()),
                          Table::num(mean_abs, 2),
                          Table::num(max_ratio, 2)});
        }
    }
    table.print();
    std::printf("\nPaper: average change 2.79%% (double-sided) and "
                "0.40%% (single-sided); rare rows up to 20.10x / "
                "2.39x.\n");
    return 0;
}
