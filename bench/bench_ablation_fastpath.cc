/**
 * @file
 * Ablation 1 (DESIGN.md §5): the executor's loop fast-path.  Uses
 * google-benchmark to measure HC_first-probe throughput with the
 * fast-path enabled vs naive per-iteration execution, and reports the
 * infrastructure's raw command rate.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>

#include "bender/host.h"
#include "exec/pool.h"
#include "hammer/patterns.h"

namespace {

using namespace pud;

dram::DeviceConfig
benchConfig()
{
    dram::DeviceConfig cfg = dram::makeConfig("HMA81GU7AFR8N-UH", 1);
    cfg.banks = 1;
    cfg.subarraysPerBank = 2;
    cfg.rowsPerSubarray = 128;
    cfg.cols = 512;
    return cfg;
}

void
BM_HammerProbe(benchmark::State &state)
{
    const bool fast = state.range(0) != 0;
    const auto hammers = static_cast<std::uint64_t>(state.range(1));

    bender::TestBench bench(benchConfig());
    bench.executor().setFastPath(fast);
    dram::Device &dev = bench.device();
    const dram::RowData aggr(512, dram::DataPattern::P55);
    const dram::RowData vict(512, dram::DataPattern::PAA);

    hammer::PatternTimings t;
    const auto program = hammer::doubleSidedRowHammer(
        0, dev.toLogical(32), dev.toLogical(34), hammers, t);

    for (auto _ : state) {
        bench.writeRow(0, dev.toLogical(32), aggr);
        bench.writeRow(0, dev.toLogical(34), aggr);
        bench.writeRow(0, dev.toLogical(33), vict);
        bench.run(program);
        benchmark::DoNotOptimize(
            bench.countBitflips(0, dev.toLogical(33), vict));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(hammers));
}

/**
 * REF-interleaved CoMRA probe: the tREFI-cadence refresh stream means
 * every hot loop carries a REF, which the generalized fast-path
 * replays iteration-by-iteration (stripe refresh + TRR bookkeeping
 * advance closed-form) instead of falling back to naive execution.
 */
void
BM_RefProbe(benchmark::State &state)
{
    const bool fast = state.range(0) != 0;
    const auto hammers = static_cast<std::uint64_t>(state.range(1));

    bender::TestBench bench(benchConfig());
    bench.executor().setFastPath(fast);
    dram::Device &dev = bench.device();
    const dram::RowData aggr(512, dram::DataPattern::P55);
    const dram::RowData vict(512, dram::DataPattern::PAA);

    hammer::PatternTimings t;
    const auto program = hammer::withRefInterleave(
        hammer::comraHammer(0, dev.toLogical(32), dev.toLogical(34),
                            hammers, t),
        t.base);

    for (auto _ : state) {
        bench.writeRow(0, dev.toLogical(32), aggr);
        bench.writeRow(0, dev.toLogical(34), aggr);
        bench.writeRow(0, dev.toLogical(33), vict);
        bench.run(program);
        benchmark::DoNotOptimize(
            bench.countBitflips(0, dev.toLogical(33), vict));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(hammers));
}

/**
 * REF-interleaved *combined* probe (the acceptance workload): a
 * CoMRA phase, a SiMRA phase, and a RowHammer phase, each carrying
 * the tREFI refresh stream -- the HC_first probe shape of the §6
 * combined-pattern sweeps with host refresh on.
 */
void
BM_CombinedRefProbe(benchmark::State &state)
{
    const bool fast = state.range(0) != 0;
    const auto hammers = static_cast<std::uint64_t>(state.range(1));

    bender::TestBench bench(benchConfig());
    bench.executor().setFastPath(fast);
    dram::Device &dev = bench.device();
    const dram::RowData aggr(512, dram::DataPattern::P55);
    const dram::RowData vict(512, dram::DataPattern::PAA);

    hammer::PatternTimings t;
    hammer::CombinedCounts counts;
    counts.comra = hammers / 4;
    counts.simra = hammers / 4;
    counts.rowHammer = hammers;
    const auto program = hammer::withRefInterleave(
        hammer::combinedPattern(0, dev.toLogical(32), dev.toLogical(34),
                                dev.toLogical(32), dev.toLogical(34),
                                dev.toLogical(40), dev.toLogical(46),
                                counts, t),
        t.base);

    for (auto _ : state) {
        bench.writeRow(0, dev.toLogical(32), aggr);
        bench.writeRow(0, dev.toLogical(34), aggr);
        bench.writeRow(0, dev.toLogical(33), vict);
        bench.run(program);
        benchmark::DoNotOptimize(
            bench.countBitflips(0, dev.toLogical(33), vict));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(hammers));
}

/**
 * Nested-loop probe: an outer sweep re-running a hot double-sided
 * loop.  The inner loop fast-paths inside each outer iteration; with
 * the cost model's consent the outer loop records across it.
 */
void
BM_NestedProbe(benchmark::State &state)
{
    const bool fast = state.range(0) != 0;
    const auto hammers = static_cast<std::uint64_t>(state.range(1));

    bender::TestBench bench(benchConfig());
    bench.executor().setFastPath(fast);
    dram::Device &dev = bench.device();
    const dram::RowData aggr(512, dram::DataPattern::P55);
    const dram::RowData vict(512, dram::DataPattern::PAA);

    hammer::PatternTimings t;
    const std::uint64_t inner = 64;
    const std::uint64_t outer =
        std::max<std::uint64_t>(1, hammers / inner);
    bender::Program program;
    program.loopBegin(outer);
    program.loopBegin(inner)
        .act(0, dev.toLogical(32), t.base.tRP)
        .pre(0, t.aggOn())
        .act(0, dev.toLogical(34), t.base.tRP)
        .pre(0, t.aggOn())
        .loopEnd();
    program.act(0, dev.toLogical(36), t.base.tRP)
        .pre(0, t.aggOn())
        .loopEnd();

    for (auto _ : state) {
        bench.writeRow(0, dev.toLogical(32), aggr);
        bench.writeRow(0, dev.toLogical(34), aggr);
        bench.writeRow(0, dev.toLogical(33), vict);
        bench.run(program);
        benchmark::DoNotOptimize(
            bench.countBitflips(0, dev.toLogical(33), vict));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(hammers));
}

void
BM_RawCommandRate(benchmark::State &state)
{
    bender::TestBench bench(benchConfig());
    bench.executor().setFastPath(false);
    dram::Device &dev = bench.device();

    hammer::PatternTimings t;
    const auto program = hammer::comraHammer(
        0, dev.toLogical(16), dev.toLogical(20), 256, t);

    for (auto _ : state)
        bench.run(program);
    // 4 commands per copy cycle.
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 256 * 4);
}

/**
 * Dispatch overhead of exec::parallelFor: per-index cost of fanning a
 * batch of cheap work units across a pool, vs the jobs=1 inline loop.
 * The per-shard work in the population runner is orders of magnitude
 * heavier, so this bounds the scheduling tax, not the speedup.
 */
void
BM_ParallelForDispatch(benchmark::State &state)
{
    const int jobs = static_cast<int>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));

    for (auto _ : state) {
        std::atomic<std::uint64_t> sum{0};
        exec::parallelFor(jobs, n, [&](std::size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        benchmark::DoNotOptimize(
            sum.load(std::memory_order_relaxed));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}

} // namespace

// {fast-path?, hammer count}
BENCHMARK(BM_HammerProbe)
    ->Args({0, 1000})
    ->Args({1, 1000})
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Args({1, 700000});

// {fast-path?, hammer count}
BENCHMARK(BM_RefProbe)
    ->Args({0, 1000})
    ->Args({1, 1000})
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Args({1, 700000});

// {fast-path?, hammer count}
BENCHMARK(BM_CombinedRefProbe)
    ->Args({0, 1000})
    ->Args({1, 1000})
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Args({1, 700000});

// {fast-path?, hammer count}
BENCHMARK(BM_NestedProbe)
    ->Args({0, 1000})
    ->Args({1, 1000})
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Args({1, 700000});

BENCHMARK(BM_RawCommandRate);

// {jobs, batch size}
BENCHMARK(BM_ParallelForDispatch)
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({4, 64})
    ->Args({4, 1024});

BENCHMARK_MAIN();
