/**
 * @file
 * Frequency-domain fuzzing campaign benchmark (ROADMAP item 1).
 *
 * Runs a seeded pud::fuzz campaign -- generate, dedup, execute on
 * exec shards, minimize -- at 10^4..10^5-candidate scale against one
 * calibrated module family and reports throughput.  The default scale
 * is a quick local run; --full is the nightly 10^5-candidate
 * campaign.
 *
 * stdout is the campaign's deterministic summary (byte-identical
 * across --jobs values, like every other bench).  Wall time and
 * throughput go to stderr and, as JSON, to --json=FILE (default
 * BENCH_fuzz_campaign.json):
 *
 *   {
 *     "bench": "fuzz_campaign", "module_id": ..., "seed": S,
 *     "candidates": N, "unique": U, "dedup_hits": D,
 *     "static_skips": K, "executed": E, "effective": F,
 *     "baseline_acts": B, "best_acts": A, "minimizer_probes": P,
 *     "jobs": J, "wall_seconds": T, "candidates_per_sec": N/T
 *   }
 *
 * Scale knobs:
 *   --module=ID         calibrated family (default HMA81GU7AFR8N-UH)
 *   --candidates=N      pre-dedup candidates (default 20000)
 *   --seed=N            campaign seed (default 1)
 *   --jobs=N            execution shards (default: all threads)
 *   --budget-periods=N  HC_first budget per candidate (default 6000)
 *   --minimize-top=N    patterns to minimize (default 1)
 *   --full              nightly scale: 10^5 candidates
 *   --corpus=FILE       also export the JSONL corpus
 *   --json=FILE         perf record path
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>

#include "exec/pool.h"
#include "fuzz/campaign.h"
#include "obs/obs.h"
#include "util/args.h"

int
main(int argc, char **argv)
{
    using namespace pud;

    const Args args(argc, argv);
    obs::initFromArgs(args);

    fuzz::CampaignConfig cfg;
    cfg.moduleId = args.get("module", cfg.moduleId);
    cfg.candidates = static_cast<std::uint64_t>(
        args.getInt("candidates", args.has("full") ? 100000 : 20000));
    cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    cfg.jobs = exec::resolveJobs(
        static_cast<int>(args.getInt("jobs", 0)));
    cfg.maxPeriods = static_cast<std::uint64_t>(
        args.getInt("budget-periods", 6000));
    cfg.minimizeTop =
        static_cast<int>(args.getInt("minimize-top", 1));

    const auto t0 = std::chrono::steady_clock::now();
    const fuzz::CampaignResult r = fuzz::runCampaign(cfg);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::fputs(fuzz::summarize(r).c_str(), stdout);

    if (args.has("corpus")) {
        std::ofstream os(args.get("corpus"));
        if (!os)
            fatal("cannot write %s", args.get("corpus").c_str());
        fuzz::writeCorpusJsonl(r, os);
    }

    const std::uint64_t best_acts =
        r.bestIdx == static_cast<std::size_t>(-1)
            ? 0
            : r.results[r.bestIdx].hcActs;
    std::uint64_t probes = 0;
    for (const auto &m : r.minimized)
        probes += m.probes;

    std::fprintf(stderr,
                 "fuzz campaign: %" PRIu64 " candidates in %.2f s "
                 "(%.0f cand/s, jobs=%d)\n",
                 r.generated, wall,
                 wall > 0 ? static_cast<double>(r.generated) / wall : 0,
                 cfg.jobs);

    const std::string json_path =
        args.get("json", "BENCH_fuzz_campaign.json");
    if (FILE *f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(
            f,
            "{\"bench\":\"fuzz_campaign\",\"module_id\":\"%s\","
            "\"seed\":%" PRIu64 ",\"candidates\":%" PRIu64
            ",\"unique\":%zu,\"dedup_hits\":%" PRIu64
            ",\"static_skips\":%" PRIu64 ",\"executed\":%" PRIu64
            ",\"effective\":%" PRIu64 ",\"baseline_acts\":%" PRIu64
            ",\"best_acts\":%" PRIu64 ",\"minimizer_probes\":%" PRIu64
            ",\"jobs\":%d,\"wall_seconds\":%.3f,"
            "\"candidates_per_sec\":%.1f}\n",
            cfg.moduleId.c_str(), cfg.seed, r.generated,
            r.corpus.size(), r.dedupHits, r.staticSkips, r.executed,
            r.effective, r.baselineActs, best_acts, probes, cfg.jobs,
            wall,
            wall > 0 ? static_cast<double>(r.generated) / wall : 0);
        std::fclose(f);
        std::fprintf(stderr, "perf record: %s\n", json_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }
    return 0;
}
