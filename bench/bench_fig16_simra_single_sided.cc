/**
 * @file
 * Reproduces Fig. 16: single-sided SiMRA-N (N up to 32) vs
 * single-sided RowHammer.
 */

#include <array>

#include "common.h"

using namespace pud;
using namespace pud::bench;

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const Scale scale = Scale::parse(args);
    banner("single-sided SiMRA sweep", "paper Fig. 16, Obs. 16-17");

    const auto &family = representative(dram::Manufacturer::SKHynix);
    ModuleTester::Options opt;
    opt.pattern = dram::DataPattern::P00;
    opt.search.maxHammers = 2000000;

    // Victims bordering N-aligned blocks work for every N <= 32.
    dram::DeviceConfig cfg =
        dram::makeConfig(family.moduleId, scale.seed);
    cfg.rowsPerSubarray = std::max<dram::RowId>(scale.rowsPerSubarray,
                                                128);
    std::vector<dram::RowId> victims;
    const dram::RowId rps = cfg.rowsPerSubarray;
    {
        const ModuleTester probe(cfg);
        for (dram::SubarrayId s : probe.testedSubarrays()) {
            for (dram::RowId block = 32; block + 32 <= rps;
                 block += 32)
                victims.push_back(s * rps + block - 1);
        }
    }

    // Six independent sweeps (five SiMRA-N plus ss-RowHammer), each
    // on its own identically-seeded tester so they parallelize under
    // --jobs; rows are rendered afterwards in fixed sweep order.
    const int ns[5] = {2, 4, 8, 16, 32};
    std::array<std::vector<double>, 6> hcs_of;
    exec::parallelFor(scale.jobs, 6, [&](std::size_t i) {
        ModuleTester tester(cfg);
        std::vector<double> &hcs = hcs_of[i];
        for (dram::RowId v : victims) {
            std::uint64_t hc;
            if (i < 5) {
                if (!tester.planSimraSingle(v, ns[i]))
                    continue;
                hc = tester.simraSingle(v, ns[i], opt);
            } else {
                hc = tester.rhSingle(v, opt);
            }
            if (hc != kNoFlip)
                hcs.push_back(static_cast<double>(hc));
        }
    });

    Table table(boxHeader("technique"));
    double mean_n[6] = {};
    for (int i = 0; i < 5; ++i) {
        char label[24];
        std::snprintf(label, sizeof(label), "ss-SiMRA-%d", ns[i]);
        table.addRow(boxRow(label, hcs_of[i]));
        mean_n[i] = stats::boxStats(hcs_of[i]).mean;
    }
    table.addRow(boxRow("ss-RowHammer", hcs_of[5]));
    mean_n[5] = stats::boxStats(hcs_of[5]).mean;
    table.print();
    std::printf("\nmean HC_first SiMRA-2 / SiMRA-32: %.2fx "
                "(paper: 1.47x); ss-RowHammer / ss-SiMRA-32: %.2fx "
                "(paper lowest: 1.17x)\n",
                mean_n[0] / mean_n[4], mean_n[5] / mean_n[4]);
    return 0;
}
